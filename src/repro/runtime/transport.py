"""IPC transports for the process runtime (data plane + batching).

The process runtime originally shipped every batch through
``multiprocessing.Queue``: one lock acquisition, one pickle in the
feeder thread, one pipe write and one consumer wakeup per hop — queue
machinery that ends up measured as "synchronization cost" in every
benchmark.  This module separates the *transport* concern from the
protocol so the hot path can do better:

* :class:`PipeTransport` (default) — one raw ``os.pipe`` per directed
  communication edge (coordinator → worker, parent ↔ child), carrying
  length-prefixed frames in the :mod:`repro.runtime.wire` frame format
  (struct-packed fast path, pickle fallback).  Single writer per pipe,
  so frames never interleave; readers ``select`` across their inbound
  pipes.  Writes are non-blocking with an ``on_block`` hook so a
  worker waiting for pipe space keeps ingesting its own inbox —
  full-duplex pressure can never deadlock the tree.

* :class:`QueueTransport` — the original ``multiprocessing.Queue``
  fabric, kept as a baseline (``transport="queue"``) so benchmarks can
  measure exactly what the fast path buys.

* :class:`SocketTransport` (``transport="tcp"``) — the same
  length-prefixed frames carried over TCP stream sockets
  (``TCP_NODELAY``, widened kernel buffers, non-blocking sends with
  the same ``on_block`` ingest hook).  Edges are loopback connections
  established before forking, so the fail-stop model is identical to
  the pipe backend: a dead peer surfaces as EOF/``ECONNRESET``, never
  as a reconnect.  :mod:`repro.runtime.cluster` carries the identical
  frame protocol over *dialed* connections between node agents — that
  is what crosses real machine boundaries; this transport is the
  single-host data plane and the benchmark baseline for it.

* :class:`SharedMemoryTransport` (``transport="shm"``) — the same
  framed byte stream carried through fixed-slot ring buffers over
  ``multiprocessing.shared_memory``, one segment per directed edge:
  payload bytes never cross the kernel, and a busy mesh runs with zero
  hot-path syscalls (an idle reader parks in ``select`` on a doorbell
  pipe and is woken by a 1-byte write — writers skip the bell while
  the reader is running), non-blocking writes with the same
  ``on_block`` ingest
  hook (slot exhaustion backpressures exactly like a full pipe), and
  crash-safe lifecycle — the coordinator owns every segment and
  unlinks them in ``close()``, workers flag their endpoints closed on
  the way out so peers observe EOF/EPIPE analogues.  Same-host only.

All transports move *batches*.  :class:`BatchingSender` owns the
policy: a :class:`BatchPolicy` either flushes at a fixed size (the old
``batch_size`` behaviour) or adapts per channel — batches grow toward
``max_batch`` while the observed global backlog is high (receivers are
busy; amortize harder) and shrink toward ``min_batch`` when the system
is keeping up, with a latency deadline bounding how long any message
can sit buffered.

The control plane (end-of-run reports, worker faults, crash/quiesce
announcements, and the global in-flight accounting that detects
quiescence) stays on ``multiprocessing`` primitives in
:class:`ControlPlane` — it is low-rate and needs blocking semantics,
not throughput.
"""

from __future__ import annotations

import os
import queue as queue_mod
import select
import socket
import struct
import time
from collections import deque
from multiprocessing import shared_memory
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from .wire import (
    FRAME_LEN,
    FrameAssembler,
    batch_message_count,
    decode_batch,
    encode_batch,
    pack_frame,
    unpack_frame,
)

#: Destination/sender id of the run coordinator (the parent process
#: pumping producer messages and collecting reports).
COORDINATOR = "__coordinator__"

#: Returned by ``Receiver.recv()`` when the coordinator shut the
#: channel down; workers exit their loop on it.
STOP = object()

#: Queue-transport stop sentinel: a plain string so it crosses the
#: wire untouched (kept from the original channel fabric).
_QUEUE_STOP = "__stop__"

_LEN = FRAME_LEN

#: Transport names accepted by ``RunOptions.transport`` /
#: ``ProcessRuntime(transport=)``.
TRANSPORTS = ("pipe", "queue", "tcp", "shm")
DEFAULT_TRANSPORT = "pipe"


def _widen_pipe(fd: int, size: int = 1 << 20) -> None:
    """Best-effort bump of the kernel pipe buffer (Linux): a 64 KiB
    default pipe forces a writer wait every ~3k packed events; 1 MiB
    keeps bursts off the slow path.  Silently keeps the default where
    unsupported or capped (``/proc/sys/fs/pipe-max-size``)."""
    try:
        import fcntl

        fcntl.fcntl(fd, getattr(fcntl, "F_SETPIPE_SZ", 1031), size)
    except (ImportError, AttributeError, OSError, ValueError):  # pragma: no cover
        pass


def configure_stream_socket(sock: socket.socket, *, nonblocking: bool) -> None:
    """Tune one TCP endpoint for the framed data plane: ``TCP_NODELAY``
    (frames are already batched — Nagle would only add latency to the
    join critical path), best-effort 1 MiB kernel buffers (mirroring
    ``_widen_pipe``), and the blocking mode the framing code expects
    (write sides are non-blocking with an ingest hook; read sides stay
    blocking — reads happen only after ``poll`` reports data)."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    for opt in (socket.SO_SNDBUF, socket.SO_RCVBUF):
        try:
            sock.setsockopt(socket.SOL_SOCKET, opt, 1 << 20)
        except OSError:  # pragma: no cover - platform cap, keep default
            pass
    sock.setblocking(not nonblocking)


# ---------------------------------------------------------------------------
# Batch policy: fixed size vs adaptive (size OR deadline, backlog-driven)
# ---------------------------------------------------------------------------

class BatchPolicy:
    """When to flush a per-destination outgoing buffer.

    ``fixed(n)`` reproduces the original behaviour: flush at ``n``
    buffered messages, never on time.  ``adaptive()`` starts from
    ``start_batch`` and moves each channel's target within
    ``[min_batch, max_batch]``: observed backlog above
    ``grow_watermark`` × target doubles it (receivers are saturated —
    amortize harder), backlog below ``shrink_watermark`` × target
    halves it (system keeping up — favour latency).  ``deadline_ms``
    additionally flushes any buffer whose oldest message has waited
    that long, so a slow stretch cannot strand messages.
    """

    __slots__ = (
        "adaptive",
        "start_batch",
        "min_batch",
        "max_batch",
        "deadline_s",
        "grow_watermark",
        "shrink_watermark",
    )

    def __init__(
        self,
        *,
        adaptive: bool,
        start_batch: int,
        min_batch: int,
        max_batch: int,
        deadline_ms: Optional[float],
        grow_watermark: float = 4.0,
        shrink_watermark: float = 0.5,
    ) -> None:
        if not 1 <= min_batch <= start_batch <= max_batch:
            raise RuntimeFault(
                f"invalid batch policy: need 1 <= min ({min_batch}) <= "
                f"start ({start_batch}) <= max ({max_batch})"
            )
        self.adaptive = adaptive
        self.start_batch = start_batch
        self.min_batch = min_batch
        self.max_batch = max_batch
        # `is not None`: deadline_ms=0 means "flush immediately", the
        # tightest latency bound — not "no deadline".
        self.deadline_s = deadline_ms / 1000.0 if deadline_ms is not None else None
        self.grow_watermark = grow_watermark
        self.shrink_watermark = shrink_watermark

    @classmethod
    def fixed(cls, batch_size: int) -> "BatchPolicy":
        n = max(1, batch_size)
        return cls(
            adaptive=False, start_batch=n, min_batch=n, max_batch=n, deadline_ms=None
        )

    @classmethod
    def adaptive_policy(
        cls,
        *,
        start_batch: int = 64,
        min_batch: int = 16,
        max_batch: int = 1024,
        deadline_ms: float = 1.0,
    ) -> "BatchPolicy":
        return cls(
            adaptive=True,
            start_batch=start_batch,
            min_batch=min_batch,
            max_batch=max_batch,
            deadline_ms=deadline_ms,
        )

    def describe(self) -> str:
        if not self.adaptive:
            return f"fixed({self.start_batch})"
        dl = self.deadline_s * 1000.0 if self.deadline_s is not None else None
        return (
            f"adaptive({self.min_batch}..{self.max_batch}, "
            f"deadline={dl}ms)"
        )


def resolve_policy(batch_size: Optional[int], flush_ms: Optional[float]) -> BatchPolicy:
    """Map the user-facing knobs onto a policy: an explicit
    ``batch_size`` selects the fixed policy (the pre-transport
    behaviour, still useful as a baseline and in tests); ``None``
    selects adaptive batching, optionally overriding the flush
    deadline."""
    if batch_size is not None:
        return BatchPolicy.fixed(batch_size)
    if flush_ms is not None:
        return BatchPolicy.adaptive_policy(deadline_ms=flush_ms)
    return BatchPolicy.adaptive_policy()


# ---------------------------------------------------------------------------
# Control plane: reports, faults, and quiescence accounting
# ---------------------------------------------------------------------------

class ControlPlane:
    """Low-rate cross-process coordination shared by all transports.

    The in-flight counter is incremented when a batch is posted and
    decremented when the receiver has fully handled it *and* flushed
    its consequences; zero (after all producer input is posted) means
    every channel and every buffer has drained."""

    def __init__(self, ctx) -> None:
        self.results = ctx.Queue()
        self.errors = ctx.Queue()
        self.crashes = ctx.Queue()
        self.quiesces = ctx.Queue()
        #: Live metrics feed: workers push (node_id, wire snapshot)
        #: tuples at a low rate when the metrics plane is on; the
        #: coordinator (cluster mode) drains it into the Prometheus
        #: exporter.  Unused — never even written — when metrics are
        #: off.
        self.metrics = ctx.Queue()
        self.inflight = ctx.Value("q", 0, lock=True)
        # Raw ctypes view: reading `inflight.value` acquires the shared
        # lock; the adaptive policy's backlog heuristic must not add a
        # second cross-process lock round per flush.
        self._inflight_raw = self.inflight.get_obj()
        self.idle = ctx.Event()
        self.idle.set()  # vacuously idle until the first post

    def add_inflight(self, n: int) -> None:
        with self.inflight.get_lock():
            self.inflight.value += n
            self.idle.clear()

    def mark_done(self, n: int) -> None:
        with self.inflight.get_lock():
            self.inflight.value -= n
            if self.inflight.value == 0:
                self.idle.set()

    def backlog(self) -> int:
        """Racy, lock-free read of the global in-flight count — a
        heuristic load signal for the adaptive batch policy, not a
        synchronization point."""
        return self._inflight_raw.value


# ---------------------------------------------------------------------------
# Batching sender (transport-independent policy layer)
# ---------------------------------------------------------------------------

class BatchingSender:
    """Per-destination outgoing buffers over a raw transport sender.

    In-flight accounting happens at flush granularity — increment just
    before the batch hits the wire, decrement when the receiver
    finishes it — so quiescence implies empty channels *and* empty
    buffers."""

    __slots__ = (
        "_send",
        "control",
        "policy",
        "_buffers",
        "_first_ts",
        "_targets",
        "metrics",
    )

    def __init__(
        self,
        send_batch: Callable[[str, List[Any]], None],
        control: ControlPlane,
        policy: BatchPolicy,
    ) -> None:
        self._send = send_batch
        self.control = control
        self.policy = policy
        self._buffers: Dict[str, List[Any]] = {}
        self._first_ts: Dict[str, float] = {}
        self._targets: Dict[str, int] = {}
        #: Optional WorkerMetrics assigned by the worker loop after
        #: construction (metrics plane on); counts flushed batches.
        self.metrics = None

    def post(self, dst: str, msg: Any) -> None:
        buf = self._buffers.get(dst)
        if buf is None:
            buf = self._buffers[dst] = []
            if self.policy.deadline_s is not None:
                self._first_ts[dst] = time.monotonic()
        buf.append(msg)
        target = self._targets.get(dst, self.policy.start_batch)
        if len(buf) >= target:
            self._flush_one(dst, target)
        elif (
            self.policy.deadline_s is not None
            and time.monotonic() - self._first_ts[dst] >= self.policy.deadline_s
        ):
            self._flush_one(dst, target)

    def _flush_one(self, dst: str, target: int) -> None:
        batch = self._buffers.pop(dst, None)
        if not batch:
            return
        self._first_ts.pop(dst, None)
        # Event-level accounting: a columnar run of n events counts n,
        # matching what the receiver marks done after decoding it.
        n_msgs = batch_message_count(batch)
        self.control.add_inflight(n_msgs)
        m = self.metrics
        if m is not None:
            m.batches_sent += 1
            m.messages_sent += n_msgs
        self._send(dst, batch)
        if self.policy.adaptive:
            # Per-channel target tracking the observed global backlog:
            # saturated receivers -> bigger batches, idle system ->
            # smaller ones.
            backlog = self.control.backlog()
            if backlog > self.policy.grow_watermark * target:
                self._targets[dst] = min(target * 2, self.policy.max_batch)
            elif backlog < self.policy.shrink_watermark * target:
                self._targets[dst] = max(target // 2, self.policy.min_batch)

    def flush(self) -> None:
        for dst in list(self._buffers):
            self._flush_one(dst, self._targets.get(dst, self.policy.start_batch))

    def pending(self) -> int:
        return sum(len(b) for b in self._buffers.values())


# ---------------------------------------------------------------------------
# Queue transport (the original fabric, kept as a measurable baseline)
# ---------------------------------------------------------------------------

class _QueueReceiver:
    __slots__ = ("_q", "metrics")

    def __init__(self, q) -> None:
        self._q = q
        self.metrics = None

    def recv(self) -> Any:
        batch = self._q.get()
        if batch == _QUEUE_STOP:
            return STOP
        if self.metrics is not None:
            self.metrics.frames_received += 1
        return decode_batch(batch)

    def poll(self) -> None:  # pragma: no cover - queue puts never block
        pass


class QueueTransport:
    """``multiprocessing.Queue`` per worker — the legacy data plane."""

    name = "queue"

    def __init__(self, ctx, edges: Dict[str, Sequence[str]]) -> None:
        self.queues = {wid: ctx.Queue() for wid in edges}

    def sender(
        self,
        src: str,
        control: ControlPlane,
        policy: BatchPolicy,
        on_block: Optional[Callable[[], None]] = None,
    ) -> BatchingSender:
        def send_batch(dst: str, batch: List[Any]) -> None:
            self.queues[dst].put(encode_batch(batch))

        return BatchingSender(send_batch, control, policy)

    def receiver(self, wid: str) -> _QueueReceiver:
        return _QueueReceiver(self.queues[wid])

    def child_setup(self, wid: str) -> None:
        pass

    def child_teardown(self, wid: str) -> None:
        pass

    def parent_setup(self) -> None:
        pass

    def stop_all(self) -> None:
        for q in self.queues.values():
            q.put(_QUEUE_STOP)

    def drain(self) -> None:
        """Discard whatever is still sitting in worker inboxes after an
        aborted attempt, so no queue feeder thread stays blocked on a
        full pipe when the queues are torn down."""
        for q in self.queues.values():
            try:
                while True:
                    q.get_nowait()
            except queue_mod.Empty:
                pass
            q.cancel_join_thread()

    def close(self) -> None:
        pass


# ---------------------------------------------------------------------------
# Pipe transport (raw os.pipe per directed edge, framed)
# ---------------------------------------------------------------------------

class FrameReceiver:
    """Merges framed traffic from every inbound stream fd of one worker
    (raw pipes or TCP sockets — both deliver arbitrarily fragmented
    bytes; :class:`FrameAssembler` owns the reassembly).

    Frames are delivered in per-sender order (each stream is FIFO and
    has a single writer); cross-sender arrival order is whatever the
    poller observes, exactly like the queue fabric's interleaved
    puts.  ``poll()`` ingests opportunistically without blocking — the
    sender calls it while waiting for channel space, which is what
    makes the mesh deadlock-free.  ``select.poll`` (not
    ``select.select``) because fd numbers above FD_SETSIZE (1024) must
    keep working — the coordinator opens every edge's channels before
    forking.

    A stream that ends cleanly (EOF at a frame boundary) means the
    writer exited; the fd is dropped and the coordinator's liveness
    checks surface the actual fault.  A stream that ends *mid-frame*
    (torn write, ``ECONNRESET`` under buffered bytes) raises
    :class:`RuntimeFault` immediately — a half-delivered batch must
    never decode as a shorter one."""

    __slots__ = ("_poller", "_n_live", "_asm", "_ready", "metrics")

    def __init__(self, rfds: List[int]) -> None:
        self._poller = select.poll()
        self._asm: Dict[int, FrameAssembler] = {}
        for fd in rfds:
            self._poller.register(fd, select.POLLIN)
            self._asm[fd] = FrameAssembler()
        self._n_live = len(rfds)
        self._ready: Deque[Any] = deque()
        #: Optional WorkerMetrics assigned by the worker loop after
        #: construction (metrics plane on); counts completed frames.
        self.metrics = None

    def recv(self) -> Any:
        while not self._ready:
            for fd, _events in self._poller.poll():
                self._ingest(fd)
        return self._ready.popleft()

    def poll(self) -> None:
        while True:
            events = self._poller.poll(0)
            if not events:
                return
            for fd, _events in events:
                self._ingest(fd)

    def _ingest(self, fd: int) -> None:
        try:
            data = os.read(fd, 1 << 16)
        except BlockingIOError:  # pragma: no cover - spurious wakeup
            return
        except OSError:
            # ECONNRESET and friends: the peer vanished abruptly.
            # Treated as end-of-stream; the assembler decides whether
            # it was torn mid-frame.
            data = b""
        if not data:
            # End of stream: drop the fd so the poller stops reporting
            # it; a mid-frame close raises out of the assembler.
            self._poller.unregister(fd)
            self._n_live -= 1
            self._asm.pop(fd).close()
            if self._n_live == 0:
                self._ready.append(STOP)
            return
        m = self.metrics
        for frame in self._asm[fd].feed(data):
            if not frame:
                self._ready.append(STOP)
            else:
                if m is not None:
                    m.frames_received += 1
                self._ready.append(unpack_frame(frame, runs=True))


class FrameSender:
    """Write side of one process's outbound framed edges — stream fds
    (pipes or TCP sockets), single writer per edge, non-blocking with
    an ingest hook while the channel is full."""

    __slots__ = ("_wfds", "_on_block")

    def __init__(self, wfds: Dict[str, int], on_block: Optional[Callable[[], None]]):
        self._wfds = wfds
        self._on_block = on_block

    def send_batch(self, dst: str, batch: List[Any]) -> None:
        data = pack_frame(batch)
        self.send_raw(dst, _LEN.pack(len(data)) + data)

    def send_raw(self, dst: str, record: bytes) -> None:
        try:
            fd = self._wfds[dst]
        except KeyError:
            raise RuntimeFault(
                f"framed transport has no edge to {dst!r} from this sender"
            ) from None
        view = memoryview(record)
        while view:
            try:
                n = os.write(fd, view)
            except BlockingIOError:
                n = 0
            except (BrokenPipeError, OSError):
                # Peer already exited: only legal after an aborted
                # attempt (crash/quiesce) or once the run is being torn
                # down; the control plane carries the real outcome.
                return
            if n:
                view = view[n:]
                continue
            if self._on_block is not None:
                self._on_block()
            # poll, not select: fd numbers above FD_SETSIZE must work.
            waiter = select.poll()
            waiter.register(fd, select.POLLOUT)
            waiter.poll(2)


class PipeTransport:
    """Raw-pipe data plane: one framed, single-writer pipe per directed
    edge of the communication graph."""

    name = "pipe"

    def __init__(self, ctx, edges: Dict[str, Sequence[str]]) -> None:
        # edges: receiver id -> sender ids allowed to reach it.
        self._edges = {wid: tuple(srcs) for wid, srcs in edges.items()}
        self._pipes: Dict[tuple, tuple] = {}
        for wid, srcs in self._edges.items():
            for src in srcs:
                self._pipes[(src, wid)] = self._open_edge()
        #: Parent-side fds not yet closed.  Tracked explicitly so
        #: ``parent_setup`` + ``close`` never double-close an fd number
        #: the OS may have reused for something else.
        self._parent_open = {fd for pair in self._pipes.values() for fd in pair}

    def _open_edge(self) -> Tuple[int, int]:
        """One directed channel as a (read fd, write fd) pair; the
        write side non-blocking (:class:`SocketTransport` overrides
        this with a TCP connection, everything else is shared)."""
        r, w = os.pipe()
        os.set_blocking(w, False)
        _widen_pipe(w)
        return r, w

    def sender(
        self,
        src: str,
        control: ControlPlane,
        policy: BatchPolicy,
        on_block: Optional[Callable[[], None]] = None,
    ) -> BatchingSender:
        wfds = {
            wid: w
            for (s, wid), (_, w) in self._pipes.items()
            if s == src
        }
        raw = FrameSender(wfds, on_block)
        return BatchingSender(raw.send_batch, control, policy)

    def receiver(self, wid: str) -> FrameReceiver:
        rfds = [r for (_, d), (r, _) in self._pipes.items() if d == wid]
        return FrameReceiver(rfds)

    def child_setup(self, wid: str) -> None:
        """Called in a forked worker before it opens its endpoints:
        close every inherited fd this worker does not own (it keeps
        read ends of inbound edges and write ends of outbound ones).
        Without this, every pipe end lives in every process and a dead
        peer can never be observed as EOF/EPIPE — only the
        coordinator's exitcode polling would catch it, seconds later."""
        for (src, dst), (r, w) in self._pipes.items():
            if dst != wid:
                os.close(r)
            if src != wid:
                os.close(w)

    def child_teardown(self, wid: str) -> None:
        """Called in a worker as it exits (even on a crash path).
        Stream transports need nothing — the kernel closes fds with the
        process, which is exactly the EOF/EPIPE peers watch for; the
        shared-memory transport overrides this to set its closed flags
        explicitly (a vanished mapping is invisible to peers)."""

    def parent_setup(self) -> None:
        """Called in the coordinator once every worker has forked:
        drop the parent's copies of the fds it never uses (all read
        ends, and write ends of worker-to-worker edges), completing
        the ownership picture ``child_setup`` starts — after this,
        each pipe end lives only in the process that uses it."""
        for (src, _), (r, w) in self._pipes.items():
            self._parent_close(r)
            if src != COORDINATOR:
                self._parent_close(w)

    def _parent_close(self, fd: int) -> None:
        if fd in self._parent_open:
            self._parent_open.discard(fd)
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - defensive
                pass

    def stop_all(self) -> None:
        """Coordinator-side shutdown: a zero-length frame on every
        coordinator edge."""
        stop = _LEN.pack(0)
        sender = FrameSender(
            {
                wid: w
                for (s, wid), (_, w) in self._pipes.items()
                if s == COORDINATOR
            },
            None,
        )
        for wid in list(self._edges):
            sender.send_raw(wid, stop)

    def drain(self) -> None:
        pass  # kernel buffers vanish with the fds

    def close(self) -> None:
        for fd in list(self._parent_open):
            self._parent_close(fd)


# ---------------------------------------------------------------------------
# Socket transport (the same frames over TCP stream sockets)
# ---------------------------------------------------------------------------

class SocketTransport(PipeTransport):
    """TCP data plane: one framed, single-writer stream socket per
    directed edge of the communication graph.

    Each edge is a real TCP connection (listen/connect/accept on
    loopback, established before forking so fd ownership works exactly
    like pipes): ``TCP_NODELAY`` on both ends, non-blocking writes
    with the deadlock-free ``on_block`` ingest hook, and fail-stop
    fault surfacing — a dead peer is EOF (or ``ECONNRESET``, raised as
    :class:`RuntimeFault` when it tears a frame), never a reconnect.
    The frame protocol on the wire is byte-identical to what
    :mod:`repro.runtime.cluster` speaks between node agents on
    different hosts, which makes this transport the single-host
    reference point for the distributed deployment."""

    name = "tcp"

    def _open_edge(self) -> Tuple[int, int]:
        with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as lst:
            lst.bind(("127.0.0.1", 0))
            lst.listen(8)
            lst.settimeout(5.0)
            w_sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            try:
                # Loopback connect completes against the backlog; no
                # accept has to be sitting there first.
                w_sock.connect(lst.getsockname())
                local = w_sock.getsockname()
                # Accept until the peer is our own just-dialed socket:
                # an ephemeral loopback port is visible to every local
                # user, and a stray connect racing ours must never be
                # paired into the mesh (its frames would later be
                # trusted, including the codec's pickle fallback).
                while True:
                    r_sock, peer = lst.accept()
                    if peer == local:
                        break
                    r_sock.close()
            except BaseException:  # pragma: no cover - defensive
                w_sock.close()
                raise
        configure_stream_socket(r_sock, nonblocking=False)
        configure_stream_socket(w_sock, nonblocking=True)
        # detach(): from here on the endpoints are plain fds managed by
        # the shared pipe-ownership machinery (child_setup/parent_setup
        # close the ends each process does not own).
        return r_sock.detach(), w_sock.detach()


# ---------------------------------------------------------------------------
# Shared-memory transport (fixed-slot rings, zero syscalls on the hot path)
# ---------------------------------------------------------------------------

_SHM_HDR = 64  # ring header size: head u64, tail u64, closed flags, padding

#: Spin-then-park budget for the receive loop.  On a multi-core host a
#: micro-lull (a sender mid-batch on another CPU) resolves within a few
#: timeslices, so yielding briefly beats paying the park/bell syscall
#: round-trip.  On a single CPU the producer cannot run concurrently —
#: every yield just rescans unchanged rings and steals the timeslice the
#: sender needs (measured as uniformly inflated Python time in *all*
#: workers, 2.5x the minor faults, and 4x the context switches) — so
#: the receiver parks immediately.
_SHM_SPIN_YIELDS = 48 if (os.cpu_count() or 1) > 1 else 0
#: Park timeout: bounds the one-missed-wakeup SMP race (instrumented
#: runs observed zero missed wakeups; the timeout is purely a backstop,
#: and on a single CPU the flag/rescan/park sequence cannot miss at
#: all).  Keep it long: every timeout expiry is a spurious wakeup — a
#: select return, a rescan of empty rings, and a re-park — and at 5 ms
#: those wakeups quadrupled the voluntary context-switch count of a
#: whole-run benchmark without improving latency.
_SHM_PARK_S = 0.05
_U64 = struct.Struct("<Q")
_SHM_LAST = 0x80000000  # slot-header bit: this chunk completes a frame

#: Default ring geometry: 128 slots x 1 KiB ≈ 128 KiB per directed
#: edge.  One slot holds a typical packed batch frame, so the common
#: case stays a single push/pop pair; larger frames (checkpoint
#: states, wide batches) chunk across slots and reassemble on the
#: receive side.  Rings are deliberately *small*: a full plan's mesh
#: of rings stays cache- and TLB-resident, where a coarse-slot layout
#: (tried first: 256 x 16 KiB ≈ 4 MiB per edge) advanced a full
#: stride per frame and paid a cold page plus a minor fault for
#: almost every transfer — measurable as 2.5x the minor faults of the
#: pipe transport on the same workload.  Capacity backpressure is the
#: non-blocking ``on_block`` path, exactly like a full pipe.
SHM_SLOTS = 128
SHM_SLOT_BYTES = 1024


def _ring_bell(fd: int) -> None:
    """Best-effort 1-byte doorbell write.  ``EAGAIN`` means the pipe
    already holds ~64k unconsumed wakeups (the reader cannot miss
    them); ``EPIPE``/``EBADF`` mean teardown is racing us — both are
    exactly the cases where dropping the byte is correct."""
    try:
        os.write(fd, b"\0")
    except OSError:
        pass


class _ShmRing:
    """One directed edge's fixed-slot ring over a SharedMemory segment.

    Single writer, single reader.  The 64-byte header holds ``head``
    (slots ever written, writer-owned), ``tail`` (slots ever read,
    reader-owned) and two closed flags: ``tx_closed`` (writer exited —
    the EOF analogue) and ``rx_closed`` (reader exited — the EPIPE
    analogue; writers stop instead of spinning on a full ring).  Each
    slot is a u32 header plus up to ``slot_bytes`` of one frame: the
    header's low 31 bits are the chunk length and the top bit marks
    the frame's *final* chunk.  Slots already delimit chunks, so
    frames need no length prefix and no
    :class:`~repro.runtime.wire.FrameAssembler` — a single-slot frame
    (the common case) is exactly one copy out of the ring, and a
    writer that dies between a frame's chunks leaves an unfinished
    chunk list behind, which surfaces as the same torn-frame
    :class:`RuntimeFault` as a mid-``write`` death on a stream.

    Shared memory has no kernel wait primitive, so each ring carries a
    *doorbell*: a non-blocking ``os.pipe`` whose read end the receiver
    parks on in ``select`` when every inbound ring is empty.  The
    reader raises ``rx_waiting`` before parking (and re-scans once
    after raising it); the writer rings the bell after a frame's final
    ``head`` bump only while that flag is up, so a busy mesh moves
    data with zero syscalls and a parked reader is woken by the
    scheduler instead of polling — which is what keeps the transport
    fast when workers outnumber cores.  Because the bell write is a
    syscall issued after the ``head`` bump, a bell byte observed by
    the reader guarantees the frame's slots are visible.

    The payload write happens before the ``head`` bump and the flag
    stores are single bytes, so on the strongly-ordered platforms
    CPython's shared-memory rings target a reader never observes a slot
    it can't fully read.

    Each side keeps a local copy of the pointer it owns (``head`` for
    the writer, ``tail`` for the reader — single-writer, so the local
    copy is always exact) and a cached snapshot of the peer's pointer,
    refreshed from shared memory only when the ring *looks* full or
    empty.  That turns the hot path from four shared-header struct ops
    per slot into one, which matters: every one of these is a Python
    ``struct`` call, and at small frames they were costing more than
    the syscalls the transport exists to avoid.  The caches start
    unset and are loaded from the header on first use, so a forked
    process inheriting this object (re-forked workers on a recovery
    attempt) starts from the authoritative shared state, not a stale
    parent-side copy.
    """

    __slots__ = (
        "shm", "buf", "slots", "slot_bytes", "_stride", "bell_r", "bell_w",
        "_head", "_tail", "_head_seen", "_tail_seen",
    )

    def __init__(self, shm, slots: int, slot_bytes: int) -> None:
        self.shm = shm
        self.buf = shm.buf
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._stride = 4 + slot_bytes
        self.bell_r, self.bell_w = os.pipe()
        os.set_blocking(self.bell_r, False)
        os.set_blocking(self.bell_w, False)
        #: Writer-local head / reader-local tail (lazy; see class doc).
        self._head: Optional[int] = None
        self._tail: Optional[int] = None
        #: Cached snapshots of the *peer's* pointer.
        self._head_seen = 0
        self._tail_seen = 0

    # -- header fields ---------------------------------------------------
    def head(self) -> int:
        return _U64.unpack_from(self.buf, 0)[0]

    def tail(self) -> int:
        return _U64.unpack_from(self.buf, 8)[0]

    def tx_closed(self) -> bool:
        return self.buf[16] != 0

    def rx_closed(self) -> bool:
        return self.buf[17] != 0

    def set_tx_closed(self) -> None:
        self.buf[16] = 1

    def set_rx_closed(self) -> None:
        self.buf[17] = 1

    def rx_waiting(self) -> bool:
        return self.buf[18] != 0

    def set_rx_waiting(self, flag: int) -> None:
        self.buf[18] = flag

    # -- data path -------------------------------------------------------
    def push(self, chunk, last: bool) -> bool:
        """Write one chunk (<= slot_bytes) into the next slot, marking
        whether it completes a frame; False if the ring is full (the
        caller owns the backpressure loop)."""
        buf = self.buf
        head = self._head
        if head is None:
            head = _U64.unpack_from(buf, 0)[0]
            self._tail_seen = _U64.unpack_from(buf, 8)[0]
        if head - self._tail_seen >= self.slots:
            self._tail_seen = _U64.unpack_from(buf, 8)[0]
            if head - self._tail_seen >= self.slots:
                self._head = head
                return False
        off = _SHM_HDR + (head % self.slots) * self._stride
        n = len(chunk)
        buf[off + 4 : off + 4 + n] = chunk
        _LEN.pack_into(buf, off, n | _SHM_LAST if last else n)
        self._head = head + 1
        _U64.pack_into(buf, 0, head + 1)
        return True

    def pop_chunk(self) -> Optional[Tuple[bytes, bool]]:
        """Read the next ``(chunk, is_final)`` pair, or None when the
        ring is empty."""
        buf = self.buf
        tail = self._tail
        if tail is None:
            tail = self._tail = _U64.unpack_from(buf, 8)[0]
        if tail >= self._head_seen:
            self._head_seen = _U64.unpack_from(buf, 0)[0]
            if tail >= self._head_seen:
                return None
        off = _SHM_HDR + (tail % self.slots) * self._stride
        n = _LEN.unpack_from(buf, off)[0]
        last = bool(n & _SHM_LAST)
        n &= _SHM_LAST - 1
        chunk = bytes(buf[off + 4 : off + 4 + n])
        self._tail = tail + 1
        _U64.pack_into(buf, 8, tail + 1)
        return chunk, last

    def drained(self) -> bool:
        return self.tail() >= self.head()

    def release(self) -> None:
        """Drop this process's view of the segment so ``shm.close()``
        (and interpreter shutdown in forked children) never trips over
        an exported buffer."""
        buf = self.buf
        self.buf = None
        if buf is not None:
            try:
                buf.release()
            except BufferError:  # pragma: no cover - defensive
                pass


class _ShmSender:
    """Write side of one process's outbound rings: frames chunked into
    slots, non-blocking with the same deadlock-free ``on_block`` ingest
    hook as the stream transports, and an ``rx_closed`` escape so a
    dead reader surfaces like EPIPE instead of an eternal spin."""

    __slots__ = ("_rings", "_on_block")

    def __init__(
        self, rings: Dict[str, _ShmRing], on_block: Optional[Callable[[], None]]
    ) -> None:
        self._rings = rings
        self._on_block = on_block

    def send_batch(self, dst: str, batch: List[Any]) -> None:
        self.send_raw(dst, pack_frame(batch))

    def send_raw(self, dst: str, frame: bytes) -> None:
        """Push one frame (*without* a length prefix — slot headers
        already delimit it) into the edge's ring."""
        try:
            ring = self._rings[dst]
        except KeyError:
            raise RuntimeFault(
                f"shm transport has no edge to {dst!r} from this sender"
            ) from None
        sb = ring.slot_bytes
        end = len(frame)
        if end <= sb:
            # Single-slot frame (the overwhelmingly common case): skip
            # the memoryview/offset machinery and push the bytes as-is.
            spins = 0
            while not ring.push(frame, True):
                if ring.rx_closed():
                    return
                if ring.rx_waiting():
                    _ring_bell(ring.bell_w)
                if self._on_block is not None:
                    self._on_block()
                spins += 1
                if spins <= 64:
                    os.sched_yield()
                else:
                    time.sleep(0.0002)
            if ring.rx_waiting():
                _ring_bell(ring.bell_w)
            return
        view = memoryview(frame)
        pos = 0
        while True:
            chunk = view[pos : pos + sb]
            last = pos + sb >= end
            spins = 0
            while not ring.push(chunk, last):
                if ring.rx_closed():
                    # Peer already exited: only legal after an aborted
                    # attempt or during teardown, mirroring the stream
                    # senders' BrokenPipeError return.
                    return
                if ring.rx_waiting():
                    # The only way out of a full ring is the reader
                    # draining it — wake it before waiting on it.
                    # (Checked every spin: the reader may park after
                    # we entered this loop; it clears the flag on
                    # wake, so this self-limits to ~one bell per
                    # park.)
                    _ring_bell(ring.bell_w)
                if self._on_block is not None:
                    self._on_block()
                # Yield first: on a saturated (or single-core) host the
                # reader needs our timeslice to drain the ring, and a
                # yield is ~100x cheaper than the shortest real sleep.
                # Park only once the ring stays full across many yields
                # (reader descheduled for a long stretch).
                spins += 1
                if spins <= 64:
                    os.sched_yield()
                else:
                    time.sleep(0.0002)
            if last:
                break
            pos += sb
        if ring.rx_waiting():
            # Ring the doorbell strictly after the final head bump, and
            # only when the reader is parked (or about to park — it
            # re-scans the rings after raising its flag, so a frame
            # visible before the flag is never missed).  A busy reader
            # costs this edge zero syscalls.
            _ring_bell(ring.bell_w)


class _ShmReceiver:
    """Merges framed traffic from every inbound ring of one worker.

    Mirrors :class:`FrameReceiver`: per-sender FIFO, opportunistic
    non-blocking ``poll`` for the senders' backpressure loops, STOP on
    an empty frame or once every inbound ring is closed and drained,
    and a torn stream (``tx_closed`` mid-frame) raising a
    :class:`RuntimeFault`.  ``recv`` parks in ``select`` on the rings'
    doorbell pipes when every inbound ring is empty — the shared
    memory itself has no kernel wait primitive to block on, and
    polling instead would steal exactly the CPU the senders need on a
    saturated host.  The select timeout is a safety net (teardown
    races, SIGKILLed writers whose flags never get set), not the
    wakeup path — but it is deliberately short: a park that loses the
    scheduling lottery costs at most one timeout, and on an
    oversubscribed single-core host that cap lands on the critical
    path of every barrier wave.  Spurious timeout wakeups when a
    worker is *genuinely* idle are a rescan of empty rings a couple
    hundred times a second — noise."""

    __slots__ = ("_entries", "_n_live", "_ready", "_bell_eof", "metrics")

    def __init__(self, rings: List[_ShmRing]) -> None:
        # entry = [ring, partial-frame chunk list, live]
        self._entries: List[list] = [[r, [], True] for r in rings]
        self._n_live = len(rings)
        self._ready: Deque[Any] = deque()
        self._bell_eof: set = set()
        self.metrics = None

    def recv(self) -> Any:
        idle = 0
        while not self._ready:
            if self._ingest():
                idle = 0
                continue
            # A micro-lull (sender mid-batch) is far more common than a
            # real quiet period: give the producers a few timeslices
            # before paying for the full park/bell round-trip.
            idle += 1
            if idle <= _SHM_SPIN_YIELDS:
                os.sched_yield()
                continue
            fds = [
                e[0].bell_r
                for e in self._entries
                if e[2] and e[0].bell_r not in self._bell_eof
            ]
            if not fds:
                # All bells dead (global teardown closed the write
                # ends) but flags not yet observed: degrade to a
                # gentle poll instead of a hot select loop.
                time.sleep(0.002)
                continue
            # Park protocol: raise the waiting flags, re-scan once
            # (any frame pushed before a writer could see a flag is
            # taken here), then block on the doorbells.  On a single
            # CPU the flag/scan/park sequence cannot interleave with a
            # writer's push/check (context switches are full barriers);
            # on SMP the worst case is one missed wakeup bounded by
            # the select timeout.
            for e in self._entries:
                if e[2]:
                    e[0].set_rx_waiting(1)
            try:
                if self._ingest():
                    continue
                readable, _, _ = select.select(fds, [], [], _SHM_PARK_S)
                for fd in readable:
                    try:
                        if os.read(fd, 1 << 16) == b"":
                            self._bell_eof.add(fd)
                    except OSError:
                        self._bell_eof.add(fd)
            finally:
                for e in self._entries:
                    if e[2]:
                        e[0].set_rx_waiting(0)
        return self._ready.popleft()

    def poll(self) -> None:
        self._ingest()

    def _ingest(self) -> bool:
        progress = False
        m = self.metrics
        for entry in self._entries:
            ring, parts, live = entry
            if not live:
                continue
            popped = ring.pop_chunk()
            while popped is not None:
                progress = True
                chunk, last = popped
                if not last:
                    parts.append(chunk)
                else:
                    if parts:
                        parts.append(chunk)
                        frame = b"".join(parts)
                        parts.clear()
                    else:
                        frame = chunk
                    if not frame:
                        self._ready.append(STOP)
                    else:
                        if m is not None:
                            m.frames_received += 1
                        self._ready.append(unpack_frame(frame, runs=True))
                popped = ring.pop_chunk()
            if ring.tx_closed() and ring.drained():
                entry[2] = False
                self._n_live -= 1
                if parts:
                    # Mid-frame death: same failure surface as a torn
                    # pipe/socket write — never silently dropped.
                    n = sum(len(c) for c in parts)
                    raise RuntimeFault(
                        f"peer closed mid-frame: {n} byte(s) of an "
                        "incomplete frame buffered (torn shm ring)"
                    )
                if self._n_live == 0:
                    self._ready.append(STOP)
        return progress


class SharedMemoryTransport:
    """Shared-memory data plane: one fixed-slot ring per directed edge
    over ``multiprocessing.shared_memory``.  Payload bytes never cross
    the kernel, and while every peer is busy the data plane makes no
    syscalls at all; an idle reader blocks in ``select`` on its rings'
    doorbell pipes (instead of stealing cycles from the workers that
    have work) and costs its writers one 1-byte bell write to wake.

    The coordinator creates every segment (and each ring's doorbell
    pipe) before forking, so workers
    inherit mappings and the parent owns the lifecycle: ``close()``
    (which the runtime's ``finally`` reaches even on KeyboardInterrupt)
    unlinks every segment exactly once, keeping fault-injection runs
    leak-free and the resource tracker quiet.  Workers set their rings'
    closed flags on the way out (``child_teardown`` runs in the worker
    ``finally``), so peers observe crashes as EOF/EPIPE analogues just
    like on the stream transports.  Same-host only — the cluster
    runtime keeps speaking TCP between node agents."""

    name = "shm"

    def __init__(
        self,
        ctx,
        edges: Dict[str, Sequence[str]],
        *,
        slots: int = SHM_SLOTS,
        slot_bytes: int = SHM_SLOT_BYTES,
    ) -> None:
        if slots < 2 or slot_bytes < 64:
            raise RuntimeFault(
                f"shm ring too small: need slots >= 2 (got {slots}) and "
                f"slot_bytes >= 64 (got {slot_bytes})"
            )
        self._edges = {wid: tuple(srcs) for wid, srcs in edges.items()}
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._rings: Dict[tuple, _ShmRing] = {}
        self._closed = False
        size = _SHM_HDR + slots * (4 + slot_bytes)
        try:
            for wid, srcs in self._edges.items():
                for src in srcs:
                    shm = shared_memory.SharedMemory(create=True, size=size)
                    self._rings[(src, wid)] = _ShmRing(shm, slots, slot_bytes)
        except BaseException:
            self.close()
            raise

    def sender(
        self,
        src: str,
        control: ControlPlane,
        policy: BatchPolicy,
        on_block: Optional[Callable[[], None]] = None,
    ) -> BatchingSender:
        rings = {
            wid: ring for (s, wid), ring in self._rings.items() if s == src
        }
        raw = _ShmSender(rings, on_block)
        return BatchingSender(raw.send_batch, control, policy)

    def receiver(self, wid: str) -> _ShmReceiver:
        return _ShmReceiver(
            [ring for (_, d), ring in self._rings.items() if d == wid]
        )

    def child_setup(self, wid: str) -> None:
        pass  # nothing fd-like to prune; mappings are shared by design

    def child_teardown(self, wid: str) -> None:
        """Worker exit path (normal, crashed, or interrupted): mark this
        worker's endpoints closed so writers stop spinning and readers
        see EOF, then drop the child's inherited mappings."""
        for (src, dst), ring in self._rings.items():
            if ring.buf is None:
                continue
            if src == wid:
                ring.set_tx_closed()
                # Wake a peer parked on this edge so it observes the
                # EOF flag now rather than at its select timeout.
                _ring_bell(ring.bell_w)
            if dst == wid:
                ring.set_rx_closed()
        for ring in self._rings.values():
            ring.release()

    def parent_setup(self) -> None:
        pass  # the parent keeps every segment: it owns unlink

    def stop_all(self) -> None:
        """Coordinator-side shutdown: a zero-length frame on every
        coordinator edge, with a bounded wait per ring so a dead worker
        (full ring, rx flag already set or never to be read) cannot
        hang the coordinator."""
        deadline = time.monotonic() + 2.0
        for (src, wid), ring in self._rings.items():
            if src != COORDINATOR or ring.buf is None:
                continue
            while not ring.rx_closed() and time.monotonic() < deadline:
                if ring.push(b"", True):  # empty frame = stop sentinel
                    _ring_bell(ring.bell_w)
                    break
                time.sleep(0.0005)

    def drain(self) -> None:
        """Abort path: flag every reader side closed so workers' spinning
        writers fall out of their backpressure loops immediately, and
        ring every bell so parked readers wake and re-check flags."""
        for ring in self._rings.values():
            if ring.buf is not None:
                ring.set_rx_closed()
            _ring_bell(ring.bell_w)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for ring in self._rings.values():
            if ring.buf is not None:
                ring.set_tx_closed()
                ring.set_rx_closed()
            ring.release()
            try:
                ring.shm.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            try:
                ring.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            for fd in (ring.bell_r, ring.bell_w):
                try:
                    os.close(fd)
                except OSError:  # pragma: no cover - already closed
                    pass


def make_transport(name: str, ctx, edges: Dict[str, Sequence[str]], **options):
    """Instantiate a registered transport.  ``options`` are
    transport-specific tuning knobs; only the shm transport takes any
    (``slots``, ``slot_bytes``) — passing options to a stream transport
    is an error rather than a silent ignore."""
    if name == "shm":
        return SharedMemoryTransport(ctx, edges, **options)
    if options:
        raise RuntimeFault(
            f"transport {name!r} takes no options (got {sorted(options)})"
        )
    if name == "pipe":
        return PipeTransport(ctx, edges)
    if name == "queue":
        return QueueTransport(ctx, edges)
    if name == "tcp":
        return SocketTransport(ctx, edges)
    raise RuntimeFault(
        f"unknown transport {name!r}; available: {TRANSPORTS}"
    )


def plan_edges(plan) -> Dict[str, List[str]]:
    """The directed communication graph of a synchronization plan:
    every worker hears from the coordinator (producer input + stop),
    its parent (join requests, forked states, relayed heartbeats) and
    its children (join responses)."""
    edges: Dict[str, List[str]] = {}
    for node in plan.workers():
        srcs = [COORDINATOR]
        parent = plan.parent_of(node.id)
        if parent is not None:
            srcs.append(parent.id)
        if not node.is_leaf:
            srcs.extend(c.id for c in node.children)
        edges[node.id] = srcs
    return edges
