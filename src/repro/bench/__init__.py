"""Benchmark harness: throughput/latency measurement (§4 methodology),
experiment drivers for every paper figure/table, and ASCII renderers."""

from .harness import (
    RatePoint,
    ReconfigPausePoint,
    RecoveryOverheadPoint,
    ScalingPoint,
    SweepResult,
    WallClockPoint,
    available_cores,
    backend_speedup,
    compare_backends,
    latency_profile,
    max_throughput,
    measure_reconfig_pause,
    measure_recovery_overhead,
    scaling_curve,
    speedup,
)
from .tables import publish, render_matrix, render_table, results_dir

__all__ = [
    "RatePoint",
    "ReconfigPausePoint",
    "RecoveryOverheadPoint",
    "ScalingPoint",
    "SweepResult",
    "WallClockPoint",
    "available_cores",
    "backend_speedup",
    "compare_backends",
    "latency_profile",
    "max_throughput",
    "measure_reconfig_pause",
    "measure_recovery_overhead",
    "publish",
    "render_matrix",
    "render_table",
    "results_dir",
    "scaling_curve",
    "speedup",
]
