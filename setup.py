from setuptools import setup

# Shim for legacy editable installs on environments without the `wheel`
# package (no network); all real metadata lives in pyproject.toml.
setup()
