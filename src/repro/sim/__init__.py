"""Deterministic discrete-event cluster simulator.

The substrate replacing the paper's AWS/EC2 testbed: single-core hosts,
uniform-latency links, message/byte accounting, and an actor layer with
Erlang-like FIFO per-pair delivery.  All simulator constants live in
:class:`repro.sim.SimParams` and are documented there.
"""

from .actors import Actor, ActorSystem, OutputRecord
from .core import Simulator
from .network import Host, NetworkStats, Topology
from .params import DEFAULT_PARAMS, SimParams

__all__ = [
    "Actor",
    "ActorSystem",
    "DEFAULT_PARAMS",
    "Host",
    "NetworkStats",
    "OutputRecord",
    "SimParams",
    "Simulator",
    "Topology",
]
