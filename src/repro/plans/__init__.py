"""Synchronization plans: structure, P-validity, generation, morphing
for elastic reconfiguration, and the communication-minimizing
optimizer (paper §3.2-§3.3, Appendix B)."""

from .cost import CostEstimate, compare_plans, estimate_cost
from .generation import (
    assign_hosts_round_robin,
    chain_plan,
    forest_plan,
    map_hosts,
    random_valid_plan,
    root_and_leaves_plan,
    rooted_shards_plan,
    sequential_plan,
    sharded_groups,
)
from .morph import (
    max_width,
    narrow_plan,
    plan_width,
    repartition_plan,
    synchronizing_itags,
    widen_plan,
)
from .optimizer import StreamInfo, optimize
from .plan import PlanNode, SyncPlan
from .validity import (
    ValidityViolation,
    assert_p_valid,
    assert_reconfig_compatible,
    is_p_valid,
    reconfig_violations,
    validity_violations,
)

__all__ = [
    "CostEstimate",
    "PlanNode",
    "StreamInfo",
    "SyncPlan",
    "ValidityViolation",
    "assert_p_valid",
    "assert_reconfig_compatible",
    "assign_hosts_round_robin",
    "chain_plan",
    "compare_plans",
    "estimate_cost",
    "forest_plan",
    "is_p_valid",
    "map_hosts",
    "max_width",
    "narrow_plan",
    "optimize",
    "plan_width",
    "random_valid_plan",
    "reconfig_violations",
    "repartition_plan",
    "root_and_leaves_plan",
    "rooted_shards_plan",
    "sequential_plan",
    "sharded_groups",
    "synchronizing_itags",
    "validity_violations",
    "widen_plan",
]
