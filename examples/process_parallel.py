#!/usr/bin/env python3
"""Runtime-backend selection: the same value-barrier program on the
simulated, threaded, and process substrates.

All three backends execute the identical synchronization-plan protocol
(selective-reordering mailboxes, join/fork state machine, heartbeat
relay); this example runs one workload through each via the uniform
backend registry, verifies the output multisets against the sequential
specification, and reports wall-clock throughput.  The process backend
runs one OS process per plan worker with batched channels — on a
multi-core machine it is the only one that escapes the GIL.

Run:  python examples/process_parallel.py
      python examples/process_parallel.py --backend process --workers 8 \\
          --batch-size 128 --spin 600
"""

import argparse

from repro.apps import value_barrier as vb
from repro.bench import available_cores
from repro.core.semantics import output_multiset
from repro.runtime import (
    RunOptions,
    available_backends,
    run_on_backend,
    run_sequential_reference,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--backend",
        choices=(*available_backends(), "all"),
        default="all",
        help="runtime backend to execute on (default: all of them)",
    )
    parser.add_argument("--workers", type=int, default=3, help="value streams / leaves")
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="process-backend fixed batch size (default: adaptive batching)",
    )
    parser.add_argument(
        "--transport",
        choices=("pipe", "queue", "tcp", "shm"),
        default="pipe",
        help="process-backend data plane: framed raw pipes (default), the "
        "legacy multiprocessing.Queue fabric, loopback TCP stream "
        "sockets, or shared-memory rings",
    )
    parser.add_argument(
        "--spin",
        type=int,
        default=100,
        help="CPU work units per value event (0 = the plain program)",
    )
    parser.add_argument("--values", type=int, default=150, help="values per barrier")
    parser.add_argument("--barriers", type=int, default=3)
    args = parser.parse_args()

    program = vb.make_cpu_program(args.spin) if args.spin else vb.make_program()
    workload = vb.make_workload(
        n_value_streams=args.workers,
        values_per_barrier=args.values,
        n_barriers=args.barriers,
    )
    plan = vb.make_plan(program, workload)
    streams = vb.make_streams(workload, heartbeat_interval=5.0)
    print(f"plan ({plan.size()} workers):\n{plan.pretty()}\n")

    want = output_multiset(run_sequential_reference(program, streams))
    backends = available_backends() if args.backend == "all" else (args.backend,)
    cores = available_cores()
    print(f"host cores: {cores}; per-event spin: {args.spin}\n")
    all_ok = True
    for name in backends:
        opts = (
            RunOptions(batch_size=args.batch_size, transport=args.transport)
            if name == "process"
            else RunOptions()
        )
        run = run_on_backend(name, program, plan, streams, options=opts)
        ok = output_multiset(run.outputs) == want
        all_ok = all_ok and ok
        print(
            f"{name:9s} outputs match spec: {ok}   "
            f"events={run.events_in}  joins={run.joins}  "
            f"wall={run.wall_s * 1e3:8.1f} ms  "
            f"throughput={run.throughput_events_per_s:10.0f} ev/s"
        )
    if not all_ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
