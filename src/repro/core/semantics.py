"""Reference (wire-diagram) semantics of DGS programs (Definition 2.2).

The semantics of a program is defined inductively over *wire diagrams*:
trees whose leaves apply ``update`` to single events and whose internal
nodes either sequence two sub-diagrams or run two sub-diagrams in
parallel between a fork and a join.  This module provides

* an explicit diagram datatype (:class:`Update`, :class:`Sequence`,
  :class:`Parallel`),
* an evaluator that checks every side condition of Definition 2.2
  (predicate implication, independence of the forked predicates, event
  membership) while computing the resulting state and outputs,
* a random legal-diagram generator used by the property tests for
  Theorem 2.4 (consistency implies determinism up to output
  reordering).

This is the executable specification against which both the simulated
and the threaded runtimes are tested.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence as Seq, Tuple

from .dependence import DependenceRelation
from .errors import ProgramError
from .events import Event
from .predicates import TagPredicate
from .program import DGSProgram, State


class Diagram:
    """Base class for wire diagrams."""

    def events(self) -> List[Event]:
        raise NotImplementedError

    def n_forks(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class Update(Diagram):
    event: Event

    def events(self) -> List[Event]:
        return [self.event]

    def n_forks(self) -> int:
        return 0


@dataclass(frozen=True)
class Sequence(Diagram):
    parts: Tuple[Diagram, ...]

    def events(self) -> List[Event]:
        out: List[Event] = []
        for p in self.parts:
            out.extend(p.events())
        return out

    def n_forks(self) -> int:
        return sum(p.n_forks() for p in self.parts)


@dataclass(frozen=True)
class Parallel(Diagram):
    """Fork into (left_type, right_type), run branches, join back."""

    left_type: str
    right_type: str
    pred1: TagPredicate
    pred2: TagPredicate
    left: Diagram
    right: Diagram

    def events(self) -> List[Event]:
        return self.left.events() + self.right.events()

    def n_forks(self) -> int:
        return 1 + self.left.n_forks() + self.right.n_forks()


def seq(*parts: Diagram) -> Diagram:
    return Sequence(tuple(parts))


def updates(events: Iterable[Event]) -> Diagram:
    return Sequence(tuple(Update(e) for e in events))


@dataclass
class EvalResult:
    state: State
    outputs: List[Any]


def evaluate(
    program: DGSProgram,
    diagram: Diagram,
    *,
    state: Optional[State] = None,
    state_type: Optional[str] = None,
    pred: Optional[TagPredicate] = None,
) -> EvalResult:
    """Evaluate ``diagram`` under Definition 2.2, enforcing all side
    conditions.  Defaults start from the initial wire
    ``<State_0, true, init()>``.

    Raises :class:`ProgramError` if the diagram is not a legal wire
    diagram for the program (e.g. a branch processes an event outside
    its predicate, or forked predicates are not independent).
    """
    if state is None:
        state = program.init()
    if state_type is None:
        state_type = program.initial_type
    if pred is None:
        pred = program.true_pred()
    st = program.state_type(state_type)
    if not pred.implies(st.pred):
        raise ProgramError(
            f"wire predicate is not within pred_{state_type} (Definition 2.2)"
        )
    return _eval(program, diagram, state, state_type, pred)


def _eval(
    program: DGSProgram,
    diagram: Diagram,
    state: State,
    state_type: str,
    pred: TagPredicate,
) -> EvalResult:
    st = program.state_type(state_type)
    if isinstance(diagram, Update):
        event = diagram.event
        if event.tag not in pred:
            raise ProgramError(
                f"event {event.tag!r} does not satisfy the wire predicate"
            )
        new_state, outs = st.update(state, event)
        return EvalResult(new_state, list(outs))
    if isinstance(diagram, Sequence):
        outputs: List[Any] = []
        for part in diagram.parts:
            res = _eval(program, part, state, state_type, pred)
            state = res.state
            outputs.extend(res.outputs)
        return EvalResult(state, outputs)
    if isinstance(diagram, Parallel):
        pred1, pred2 = diagram.pred1, diagram.pred2
        if not pred1.implies(pred) or not pred2.implies(pred):
            raise ProgramError("forked predicates must imply the wire predicate")
        if not pred1.independent_of(pred2, program.depends):
            raise ProgramError("forked predicates are not independent")
        fork = program.fork_for(state_type, diagram.left_type, diagram.right_type)
        join = program.join_for(diagram.left_type, diagram.right_type, state_type)
        s1, s2 = fork(state, pred1, pred2)
        r1 = _eval(program, diagram.left, s1, diagram.left_type, pred1)
        r2 = _eval(program, diagram.right, s2, diagram.right_type, pred2)
        joined = join(r1.state, r2.state)
        # Outputs of parallel branches may interleave arbitrarily; we
        # return left-then-right.  Theorem 2.4 is about multisets, so
        # any interleaving is equally representative.
        return EvalResult(joined, r1.outputs + r2.outputs)
    raise ProgramError(f"unknown diagram node {type(diagram).__name__}")


def output_multiset(outputs: Iterable[Any]) -> Counter:
    return Counter(_hashable(o) for o in outputs)


def _hashable(value: Any) -> Any:
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, set):
        return frozenset(_hashable(v) for v in value)
    return value


def random_diagram(
    program: DGSProgram,
    events: Seq[Event],
    rng: random.Random,
    *,
    state_type: Optional[str] = None,
    pred: Optional[TagPredicate] = None,
    max_depth: int = 6,
) -> Diagram:
    """Generate a random *legal* wire diagram processing ``events`` (in
    the given relative order within each dependence class).

    The generator recursively tries to split the remaining events into
    two independent groups (by partitioning the tags present into two
    sets with no dependence edges across); when it succeeds it emits a
    :class:`Parallel` node, otherwise a plain sequence of updates.
    Only programs with a self fork/join on the current state type can
    parallelize; others fall back to sequential diagrams.
    """
    if state_type is None:
        state_type = program.initial_type
    if pred is None:
        pred = program.true_pred()
    if max_depth <= 0 or len(events) < 2:
        return updates(events)
    if not program.has_fork_join(state_type, state_type, state_type):
        return updates(events)

    present = sorted({e.tag for e in events}, key=repr)
    split = _independent_tag_split(program.depends, present, rng)
    if split is None:
        # No independent tag split: sequence of chunks, recursing so
        # that a later suffix (with different tags) may still fork.
        if len(events) < 4:
            return updates(events)
        cut = rng.randrange(1, len(events))
        left = random_diagram(
            program, events[:cut], rng, state_type=state_type, pred=pred,
            max_depth=max_depth - 1,
        )
        right = random_diagram(
            program, events[cut:], rng, state_type=state_type, pred=pred,
            max_depth=max_depth - 1,
        )
        return seq(left, right)

    tags1, tags2 = split
    pred1 = pred.restrict(tags1)
    pred2 = pred.restrict(tags2)
    # Each event is processed exactly once: events matching both
    # (overlapping) predicates are routed to a random branch, which is
    # precisely the interleaving freedom of Definition 2.2 case (4).
    ev1: List[Event] = []
    ev2: List[Event] = []
    rest: List[Event] = []
    for e in events:
        in1, in2 = e.tag in pred1, e.tag in pred2
        if in1 and in2:
            (ev1 if rng.random() < 0.5 else ev2).append(e)
        elif in1:
            ev1.append(e)
        elif in2:
            ev2.append(e)
        else:
            rest.append(e)
    left = random_diagram(
        program, ev1, rng, state_type=state_type, pred=pred1, max_depth=max_depth - 1
    )
    right = random_diagram(
        program, ev2, rng, state_type=state_type, pred=pred2, max_depth=max_depth - 1
    )
    par = Parallel(state_type, state_type, pred1, pred2, left, right)
    if rest:
        # Events not covered by either branch must be processed outside
        # the parallel section (after the join).
        tail = random_diagram(
            program, rest, rng, state_type=state_type, pred=pred,
            max_depth=max_depth - 1,
        )
        return seq(par, tail)
    return par


def _independent_tag_split(
    depends: DependenceRelation, tags: List[Any], rng: random.Random
) -> Optional[Tuple[List[Any], List[Any]]]:
    """Partition ``tags`` into two nonempty cross-independent groups.

    A tag that is self-dependent may appear in at most one group; a tag
    that is *not* self-dependent may be duplicated into both groups
    (the paper's increments-of-one-key example), which we do with small
    probability to exercise non-disjoint predicates.
    """
    if len(tags) < 2:
        # Single non-self-dependent tag can still split into two copies.
        if len(tags) == 1 and not depends.is_self_dependent(tags[0]):
            return [tags[0]], [tags[0]]
        return None
    order = tags[:]
    rng.shuffle(order)
    group1: List[Any] = []
    group2: List[Any] = []
    for t in order:
        ok1 = all(depends.indep(t, u) for u in group2)
        ok2 = all(depends.indep(t, u) for u in group1)
        if ok1 and ok2 and not depends.is_self_dependent(t) and rng.random() < 0.2:
            group1.append(t)
            group2.append(t)
        elif ok1 and (not ok2 or rng.random() < 0.5):
            group1.append(t)
        elif ok2:
            group2.append(t)
        # tags fitting neither group are left uncovered
    if group1 and group2:
        return group1, group2
    return None
