"""The communication-minimizing plan optimizer (paper Appendix B).

Heuristic: build the implementation-tag dependence graph, and
recursively

1. if the graph is disconnected, split the components into two groups
   (balancing input rate) and recurse — independent subtrees never
   communicate;
2. otherwise move the lowest-rate implementation tags up to the local
   root until the remainder disconnects — synchronizing events are
   rare, so the cheap tags pay the join/fork cost;
3. if no removal disconnects the graph, emit a single (sequential)
   worker for the group.

Placement then puts every worker on the host where most of its input
arrives (leaves next to their stream sources; internal nodes next to
their own tags' sources, falling back to the heavier child), which is
the paper's "maximize events processed by leaves / place workers close
to their inputs" objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from ..core.errors import PlanError
from ..core.events import ImplTag
from ..core.program import DGSProgram
from .plan import PlanNode, SyncPlan
from .generation import _Ids


@dataclass(frozen=True)
class StreamInfo:
    """Optimizer input: one implementation tag's rate and source host."""

    itag: ImplTag
    rate: float
    host: str


def optimize(
    program: DGSProgram,
    streams: Sequence[StreamInfo],
    *,
    state_type: Optional[str] = None,
) -> SyncPlan:
    """Generate a P-valid plan minimizing cross-worker communication."""
    if not streams:
        raise PlanError("optimizer needs at least one input stream")
    st = state_type or program.initial_type
    by_itag: Dict[ImplTag, StreamInfo] = {}
    for info in streams:
        if info.itag in by_itag:
            raise PlanError(f"duplicate stream for {info.itag!r}")
        by_itag[info.itag] = info
    ids = _Ids()

    def rate_of(itags: Iterable[ImplTag]) -> float:
        return sum(by_itag[t].rate for t in itags)

    def build(group: List[ImplTag]) -> PlanNode:
        if len(group) == 1:
            return _leaf(group)
        g = program.depends.itag_graph(group)
        comps = _sorted_components(g)
        if len(comps) >= 2:
            left, right = _balance_components(comps, rate_of)
            return _node(frozenset(), build(left), build(right))
        # Connected: peel off lowest-rate tags until the rest splits.
        root_tags: List[ImplTag] = []
        remaining = sorted(group, key=lambda t: (by_itag[t].rate, repr(t)))
        while len(remaining) > 1:
            root_tags.append(remaining.pop(0))
            g = program.depends.itag_graph(remaining)
            comps = _sorted_components(g)
            if len(comps) >= 2:
                left, right = _balance_components(comps, rate_of)
                return _node(frozenset(root_tags), build(left), build(right))
        # Never disconnected: sequentialize the whole group.
        return _leaf(group)

    def _leaf(group: List[ImplTag]) -> PlanNode:
        host = _dominant_host(group)
        return PlanNode(ids.next(), st, frozenset(group), host=host)

    def _node(itags: frozenset, left: PlanNode, right: PlanNode) -> PlanNode:
        if itags:
            host = _dominant_host(itags)
        else:
            # Neutral node: sit with the heavier child.
            host = max(
                (left, right),
                key=lambda n: rate_of(
                    t for t in _subtree_tags(n) if t in by_itag
                ),
            ).host
        return PlanNode(ids.next(), st, itags, (left, right), host=host)

    def _dominant_host(itags: Iterable[ImplTag]) -> str:
        weights: Dict[str, float] = {}
        for t in itags:
            info = by_itag[t]
            weights[info.host] = weights.get(info.host, 0.0) + info.rate
        return max(sorted(weights), key=lambda h: weights[h])

    root = build(sorted(by_itag, key=repr))
    return SyncPlan(_renumber(root))


def _subtree_tags(node: PlanNode) -> List[ImplTag]:
    out = list(node.itags)
    for c in node.children:
        out.extend(_subtree_tags(c))
    return out


def _sorted_components(g: nx.Graph) -> List[List[ImplTag]]:
    return [sorted(c, key=repr) for c in nx.connected_components(g)]


def _balance_components(
    comps: List[List[ImplTag]], rate_of
) -> Tuple[List[ImplTag], List[ImplTag]]:
    """Greedy LPT partition of components into two rate-balanced sides."""
    comps = sorted(comps, key=lambda c: (-rate_of(c), repr(c)))
    left: List[ImplTag] = []
    right: List[ImplTag] = []
    lrate = rrate = 0.0
    for comp in comps:
        if lrate <= rrate:
            left.extend(comp)
            lrate += rate_of(comp)
        else:
            right.extend(comp)
            rrate += rate_of(comp)
    if not left or not right:
        raise PlanError("failed to balance components")
    return left, right


def _renumber(root: PlanNode) -> PlanNode:
    """Re-assign worker ids in breadth-first order (w1 = root, as in
    the paper's Figure 3) for readable plan printouts."""
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"w{counter[0]}"

    def rec(node: PlanNode) -> PlanNode:
        nid = fresh()
        children = tuple(rec(c) for c in node.children)
        return PlanNode(nid, node.state_type, node.itags, children, node.host)

    return rec(root)
