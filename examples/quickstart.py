#!/usr/bin/env python3
"""Quickstart: the paper's running example (Figure 1) end to end.

Builds the key-counter DGS program, checks the consistency conditions
(C1-C3), derives a synchronization plan, runs it on the simulated
cluster, and verifies the outputs against the sequential specification.

Run:  python examples/quickstart.py
"""

import random
from collections import Counter

from repro.apps import keycounter as kc
from repro.core import Event, ImplTag, check_consistency
from repro.plans import is_p_valid, random_valid_plan
from repro.runtime import FluminaRuntime, InputStream, run_sequential_reference


def main() -> None:
    # 1. The DGS program: a map from keys to counters with increment
    #    i(k) and read-reset r(k) events (paper Figure 1).
    program = kc.make_program(num_keys=3)
    print(f"program: {program}")

    # 2. Consistency (Definition 2.3): fork/join/update must satisfy
    #    C1-C3 for parallelization to preserve sequential semantics.
    rng = random.Random(0)
    tags = sorted(program.tags, key=repr)
    sample = [Event(tags[rng.randrange(len(tags))], 0, float(t)) for t in range(30)]
    report = check_consistency(program, sample, state_eq=kc.state_eq)
    print(f"consistency: ok={report.ok} over {report.checks} checks")

    # 3. Input streams: two increment streams per key plus one
    #    read-reset stream per key, with unique timestamps.
    itags = []
    for k in range(3):
        itags += [ImplTag(kc.inc_tag(k), f"i{k}.{s}") for s in range(2)]
        itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
    per_itag = {it: [] for it in itags}
    for t in range(1, 400):
        it = itags[rng.randrange(len(itags))]
        per_itag[it].append(Event(it.tag, it.stream, float(t)))
    streams = [
        InputStream(it, tuple(evs), heartbeat_interval=5.0)
        for it, evs in per_itag.items()
    ]

    # 4. A synchronization plan (§3.2): any P-valid plan is correct;
    #    here a randomly generated one, printed in Figure-3 style.
    plan = random_valid_plan(program, itags, rng)
    assert is_p_valid(plan, program)
    print("\nsynchronization plan:")
    print(plan.pretty())

    # 5. Run on the simulated cluster and compare with spec.
    runtime = FluminaRuntime(program, plan)
    result = runtime.run(streams)
    got = Counter(result.output_values())
    want = Counter(run_sequential_reference(program, streams))
    ok = got == want
    print(f"\noutputs match sequential spec: {ok}")
    print(
        f"events={result.events_in} joins={result.joins} "
        f"throughput={result.throughput_events_per_ms:.1f} events/ms "
        f"p50 latency={result.latency_percentiles([50])[0]:.2f} ms"
    )
    if not ok:
        raise SystemExit(1)  # checked, not asserted — and honest to $?


if __name__ == "__main__":
    main()
