"""The seeded chaos sweep (repro.chaos) as a tier-1 suite.

Acceptance shape: >= 50 seeded (app, plan, fault-schedule) cases across
the threaded and process runtimes, each recovering from its injected
faults and producing outputs multiset-equal to the sequential
reference.  Every case id encodes its full derivation seed, so a
failure here reproduces standalone with

    python -m repro.chaos --seed 20260728 --cases 54 --only <case_id>
"""

import pytest

from repro.chaos import (
    APPS,
    ChaosCase,
    build_fault_schedule,
    build_workload,
    generate_cases,
    run_chaos_case,
)
from repro.runtime import CrashFault, DropHeartbeats

SWEEP_SEED = 20260728
N_CASES = 54  # acceptance floor is 50; a few extra for slack

CASES = generate_cases(
    seed=SWEEP_SEED, n_cases=N_CASES, backends=("threaded", "process")
)

_OUTCOMES = {}


@pytest.mark.parametrize("case", CASES, ids=lambda c: c.case_id)
def test_chaos_case_recovers_and_matches_spec(case):
    outcome = run_chaos_case(case, timeout_s=60.0)
    _OUTCOMES[case.case_id] = outcome
    assert outcome.ok, (
        f"{case.case_id}: outputs diverged from the sequential reference "
        f"after fault injection: {outcome.mismatch}"
    )


def test_sweep_composition():
    """The generated sweep actually covers what it claims: both real
    runtimes, every chaos app, and schedules containing crashes."""
    backends = {c.backend for c in CASES}
    assert backends == {"threaded", "process"}
    assert {c.app for c in CASES} == set(APPS)
    assert len(CASES) >= 50
    assert len({c.case_id for c in CASES}) == len(CASES)
    n_crashes = 0
    n_drops = 0
    for case in CASES:
        prog, streams, plan, sync_ts = build_workload(case)
        fp = build_fault_schedule(case, streams, plan, sync_ts)
        n_crashes += sum(1 for f in fp.faults if isinstance(f, CrashFault))
        n_drops += sum(1 for f in fp.faults if isinstance(f, DropHeartbeats))
    assert n_crashes >= len(CASES)  # every case schedules at least one crash
    assert n_drops > 0


def test_sweep_exercised_recovery():
    """Most schedules must have actually fired (crash observed +
    recovery replayed events) — a sweep where faults never trigger
    would be vacuous.  Outcomes are taken from the parametrized cases
    when they ran in this process (the full-suite case: free), and
    recomputed otherwise (selective or split runs stay correct)."""
    outcomes = [
        _OUTCOMES.get(c.case_id) or run_chaos_case(c, timeout_s=60.0) for c in CASES
    ]
    recovered = [o for o in outcomes if o.recovered]
    assert len(recovered) >= len(outcomes) * 0.6
    assert sum(o.replayed_events for o in recovered) > 0
    assert all(o.attempts >= 2 for o in recovered)
    assert sum(o.checkpoints_taken for o in outcomes) > 0


def test_case_derivation_is_deterministic():
    case = ChaosCase(app="value-barrier", backend="threaded", seed=4242)
    a = build_workload(case)
    b = build_workload(case)
    assert [s.events for s in a[1]] == [s.events for s in b[1]]
    assert a[2].pretty() == b[2].pretty()
    fa = build_fault_schedule(case, a[1], a[2], a[3])
    fb = build_fault_schedule(case, b[1], b[2], b[3])
    assert fa.faults == fb.faults
