"""Figure 8: Flumina (DGS) max throughput vs parallelism.

Paper shape: all three applications scale (~8x at 12 nodes) without
sacrificing any platform-independence principle — including fraud
detection and same-key page-view parallelism, which neither baseline
achieves automatically.
"""

from conftest import parallelism_levels

from repro.bench import experiments as ex
from repro.bench import publish, render_table
from repro.bench.harness import speedup


def test_fig8_flumina(benchmark):
    data = benchmark.pedantic(
        lambda: ex.figure8_flumina(parallelism_levels()), rounds=1, iterations=1
    )
    xs = [pt.parallelism for pt in next(iter(data.values()))]
    series = {
        app: [pt.max_throughput_per_ms for pt in pts] for app, pts in data.items()
    }
    text = render_table(
        "Figure 8 - Flumina (DGS): max throughput (events/ms) vs parallelism",
        "parallelism",
        xs,
        series,
        note="paper shape: all three apps ~8x @12 nodes, no PIP sacrificed",
    )
    publish("fig8_flumina", text)

    sp = {app: dict(speedup(pts)) for app, pts in data.items()}
    for app in ("Event Win.", "Page View", "Fraud Dec."):
        assert sp[app][12] > 5.0, f"{app} failed to scale: {sp[app]}"
    # The distinguishing result: DGS parallelizes fraud detection and
    # hot-key page views, which auto-Flink cannot (cross-check).
    from repro.bench.harness import max_throughput

    flink_fraud12 = max_throughput(ex.flink_fraud(12), **ex.SWEEP).max_throughput
    dgs_fraud12 = dict(
        (pt.parallelism, pt.max_throughput_per_ms) for pt in data["Fraud Dec."]
    )[12]
    assert dgs_fraud12 > 2.0 * flink_fraud12
