"""Per-worker metrics plane (ISSUE 6 / ROADMAP item 4).

The runtime measures itself with near-zero hot-path cost: each worker
owns a :class:`WorkerMetrics` with plain-int counters and two
fixed-bucket :class:`LatencyHistogram`\\ s (join/fork round-trip and
end-to-end event latency).  Snapshots travel to the root piggybacked on
the join-response path — exactly like ``backlog`` already does — so the
metrics plane adds no new message types and costs a single ``is None``
check when disabled.

Latency units are **seconds** throughout.  End-to-end latency is
``wall_now - (epoch + ts_ms / 1000)``: timestamps double as arrival
offsets (milliseconds), and the substrate stamps ``epoch`` (wall-clock
``time.time()``) just before releasing producers, so under open-loop
pacing (``RunOptions.pace``) the histogram measures true source-to-commit
latency.  Without pacing it measures pipeline residency relative to the
run start — still useful for regression gating, and documented as such.

The sim substrate reports a single ``"sim"`` pseudo-worker whose
end-to-end histogram is fed from simulated-time latencies (ms / 1000);
its wall-clock meaning differs but percentile math is identical.
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "MetricsConfig",
    "LatencyHistogram",
    "WorkerMetrics",
    "MetricsSnapshot",
    "RunMetrics",
    "MetricsExporter",
    "merge_attempt_metrics",
    "prometheus_render",
]


def _geometric_buckets(lo: float, hi: float, per_decade: int = 4) -> Tuple[float, ...]:
    """Geometric bucket upper bounds from ``lo`` to ``hi`` seconds."""
    out: List[float] = []
    b = lo
    ratio = 10.0 ** (1.0 / per_decade)
    while b < hi * (1.0 + 1e-9):
        out.append(b)
        b *= ratio
    return tuple(out)


# 100 us .. 100 s, four buckets per decade (24 bounds + overflow).
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = _geometric_buckets(1e-4, 100.0)


@dataclass(frozen=True)
class MetricsConfig:
    """Immutable per-run metrics configuration.

    ``epoch`` is the wall-clock instant (``time.time()``) when producers
    were released; substrates stamp it just before starting workers so
    every process/node shares the same latency origin.
    """

    latency_buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    epoch: Optional[float] = None

    def with_epoch(self, epoch: float) -> "MetricsConfig":
        return MetricsConfig(latency_buckets=self.latency_buckets, epoch=epoch)


class LatencyHistogram:
    """Fixed-bucket latency histogram (seconds).

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last edge.  ``observe`` is a
    ``bisect`` plus two adds — cheap enough for the worker hot path.
    """

    __slots__ = ("bounds", "counts", "count", "sum")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if not self.bounds or list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be non-empty and sorted")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value

    def merge(self, other: "LatencyHistogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.sum += other.sum

    def percentile(self, q: float) -> float:
        """Approximate percentile (0..100) by linear interpolation
        inside the bucket containing the target rank; 0.0 when empty.

        A rank landing in the overflow bucket returns ``+inf``: the
        true value is above the last edge and unbounded, and clamping
        it to ``bounds[-1]`` would let a latency gate read an
        overflowed tail as "in range"."""
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                if i == len(self.bounds):
                    return float("inf")
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i]
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += c
        return float("inf") if self.counts[-1] else self.bounds[-1]

    @property
    def overflow(self) -> int:
        """Observations above the last bucket edge."""
        return self.counts[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def copy(self) -> "LatencyHistogram":
        h = LatencyHistogram(self.bounds)
        h.counts = list(self.counts)
        h.count = self.count
        h.sum = self.sum
        return h

    # -- wire form: compact sparse tuple of plain scalars so snapshots
    # ride the fast scalar-tuple frame codec (wire._pack_scalar).
    def to_wire(self) -> Tuple[Any, ...]:
        sparse: List[Any] = []
        for i, c in enumerate(self.counts):
            if c:
                sparse.extend((i, c))
        return (self.count, float(self.sum), tuple(sparse))

    @classmethod
    def from_wire(
        cls, wire: Tuple[Any, ...], bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> "LatencyHistogram":
        h = cls(bounds)
        h.count = int(wire[0])
        h.sum = float(wire[1])
        sparse = wire[2]
        for j in range(0, len(sparse), 2):
            h.counts[int(sparse[j])] = int(sparse[j + 1])
        return h


@dataclass
class MetricsSnapshot:
    """A picklable point-in-time copy of one worker's metrics."""

    worker: str
    events_processed: int = 0
    joins_completed: int = 0
    batches_sent: int = 0
    messages_sent: int = 0
    frames_received: int = 0
    max_backlog: int = 0
    join_rtt: Optional[LatencyHistogram] = None
    event_latency: Optional[LatencyHistogram] = None

    _COUNTERS = (
        "events_processed",
        "joins_completed",
        "batches_sent",
        "messages_sent",
        "frames_received",
    )

    def to_wire(self) -> Tuple[Any, ...]:
        return (
            self.worker,
            self.events_processed,
            self.joins_completed,
            self.batches_sent,
            self.messages_sent,
            self.frames_received,
            self.max_backlog,
            self.join_rtt.to_wire() if self.join_rtt else None,
            self.event_latency.to_wire() if self.event_latency else None,
        )

    @classmethod
    def from_wire(
        cls, wire: Tuple[Any, ...], bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> "MetricsSnapshot":
        return cls(
            worker=str(wire[0]),
            events_processed=int(wire[1]),
            joins_completed=int(wire[2]),
            batches_sent=int(wire[3]),
            messages_sent=int(wire[4]),
            frames_received=int(wire[5]),
            max_backlog=int(wire[6]),
            join_rtt=LatencyHistogram.from_wire(wire[7], bounds) if wire[7] else None,
            event_latency=(
                LatencyHistogram.from_wire(wire[8], bounds) if wire[8] else None
            ),
        )

    def to_json(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {"worker": self.worker, "max_backlog": self.max_backlog}
        for k in self._COUNTERS:
            d[k] = getattr(self, k)
        for name, h in (("join_rtt", self.join_rtt), ("event_latency", self.event_latency)):
            if h is not None and h.count:
                d[name] = {
                    "count": h.count,
                    "overflow": h.overflow,
                    "mean_s": h.mean,
                    "p50_s": h.percentile(50),
                    "p99_s": h.percentile(99),
                }
        return d

    def copy(self) -> "MetricsSnapshot":
        snap = MetricsSnapshot(worker=self.worker, max_backlog=self.max_backlog)
        for k in self._COUNTERS:
            setattr(snap, k, getattr(self, k))
        snap.join_rtt = self.join_rtt.copy() if self.join_rtt else None
        snap.event_latency = self.event_latency.copy() if self.event_latency else None
        return snap

    def add(self, other: "MetricsSnapshot") -> None:
        """Accumulate ``other`` into this snapshot: counters sum,
        backlogs take the high-water, histograms merge (bucket-checked).
        This is the cross-*attempt* combinator — unlike
        :meth:`RunMetrics.absorb`, which keeps the richest of several
        reports of the *same* attempt."""
        for k in self._COUNTERS:
            setattr(self, k, getattr(self, k) + getattr(other, k))
        self.max_backlog = max(self.max_backlog, other.max_backlog)
        for attr in ("join_rtt", "event_latency"):
            theirs: Optional[LatencyHistogram] = getattr(other, attr)
            if theirs is None:
                continue
            mine: Optional[LatencyHistogram] = getattr(self, attr)
            if mine is None:
                setattr(self, attr, theirs.copy())
            else:
                mine.merge(theirs)


class WorkerMetrics:
    """Mutable per-worker metrics; owned by exactly one worker loop.

    Hot-path hooks are attribute bumps or a single histogram observe.
    The root's instance additionally accumulates subtree snapshots that
    arrive piggybacked on join responses (``note_subtree``).
    """

    __slots__ = (
        "worker",
        "config",
        "events_processed",
        "joins_completed",
        "batches_sent",
        "messages_sent",
        "frames_received",
        "max_backlog",
        "backlog_window",
        "join_rtt",
        "event_latency",
        "subtree",
        "_last_ship",
    )

    def __init__(self, worker: str, config: Optional[MetricsConfig] = None):
        self.worker = worker
        self.config = config or MetricsConfig()
        self.events_processed = 0
        self.joins_completed = 0
        self.batches_sent = 0
        self.messages_sent = 0
        self.frames_received = 0
        self.max_backlog = 0
        self.backlog_window = 0
        self.join_rtt = LatencyHistogram(self.config.latency_buckets)
        self.event_latency = LatencyHistogram(self.config.latency_buckets)
        # Root side: latest wire snapshot per descendant worker.
        self.subtree: Dict[str, Tuple[Any, ...]] = {}
        self._last_ship = 0.0

    # -- hot-path hooks -------------------------------------------------
    def note_backlog(self, depth: int) -> None:
        if depth > self.max_backlog:
            self.max_backlog = depth
        if depth > self.backlog_window:
            self.backlog_window = depth

    def take_backlog_window(self) -> int:
        """High-water backlog since the last call, then reset — the
        windowed load signal the root feeds the auto-scaler (a spike
        between two joins is visible even if the queue drained by the
        instant of the join itself)."""
        hw = self.backlog_window
        self.backlog_window = 0
        return hw

    def observe_event_latency(self, now_wall: float, ts_ms: float) -> None:
        epoch = self.config.epoch
        if epoch is None:
            return
        lat = now_wall - (epoch + ts_ms / 1000.0)
        self.event_latency.observe(lat if lat > 0.0 else 0.0)

    # -- piggyback plumbing ---------------------------------------------
    def wire_snapshot(self) -> Tuple[Any, ...]:
        return self.snapshot().to_wire()

    def maybe_wire_snapshot(self, now: float, interval: float = 0.25) -> Optional[tuple]:
        """Rate-limited snapshot for piggybacking: at most one every
        ``interval`` seconds, else None (costs one float compare)."""
        if now - self._last_ship < interval:
            return None
        self._last_ship = now
        return (self.wire_snapshot(),)

    def note_subtree(self, wires: Optional[Iterable[Tuple[Any, ...]]]) -> None:
        if not wires:
            return
        for w in wires:
            self.subtree[str(w[0])] = w

    def snapshot(self) -> MetricsSnapshot:
        snap = MetricsSnapshot(worker=self.worker, max_backlog=self.max_backlog)
        for k in MetricsSnapshot._COUNTERS:
            setattr(snap, k, getattr(self, k))
        if self.join_rtt.count:
            snap.join_rtt = self.join_rtt
        if self.event_latency.count:
            snap.event_latency = self.event_latency
        return snap

    def all_snapshots(self) -> List[MetricsSnapshot]:
        """Own snapshot plus the latest piggybacked subtree snapshots."""
        bounds = self.config.latency_buckets
        out = [self.snapshot()]
        for w in self.subtree.values():
            out.append(MetricsSnapshot.from_wire(w, bounds))
        return out


@dataclass
class RunMetrics:
    """Cross-worker metrics for one run, attached to run results.

    For a plain run the recovery/elasticity counters below stay zero.
    For a recovering or elastic run the drivers build one
    ``RunMetrics`` per *attempt* (each with its own latency epoch,
    stamped when that attempt's producers were released — so a
    replayed event's latency measures its true recovery delay, from
    restart to re-commit) and fold them into a whole-run total with
    :func:`merge_attempt_metrics`, stamping ``attempts``,
    ``replayed_events``, ``checkpoints_restored``,
    ``reconfigurations``, and ``migration_pause_s``."""

    per_worker: Dict[str, MetricsSnapshot] = field(default_factory=dict)
    latency_buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS
    #: Execution attempts the metrics cover (0 = single plain run).
    attempts: int = 0
    #: Events re-fed through the protocol by crash recoveries.
    replayed_events: int = 0
    #: Checkpoint restores performed (one per recovery step).
    checkpoints_restored: int = 0
    #: Completed plan migrations (elastic runs).
    reconfigurations: int = 0
    #: Total driver-side migration pause across all reconfigurations.
    migration_pause_s: float = 0.0

    _RECOVERY_COUNTERS = (
        "attempts",
        "replayed_events",
        "checkpoints_restored",
        "reconfigurations",
        "migration_pause_s",
    )

    def absorb(self, snap: MetricsSnapshot) -> None:
        """Keep the richer snapshot when a worker reports twice (live
        piggyback then end-of-run report)."""
        prev = self.per_worker.get(snap.worker)
        if prev is None or snap.events_processed >= prev.events_processed:
            self.per_worker[snap.worker] = snap

    def accumulate(self, other: "RunMetrics") -> None:
        """Fold another attempt's metrics into this one as totals:
        per-worker counters sum and histograms merge
        (:meth:`MetricsSnapshot.add`); ``other`` is left untouched, so
        per-attempt snapshots stay inspectable after the merge."""
        for w, snap in other.per_worker.items():
            mine = self.per_worker.get(w)
            if mine is None:
                self.per_worker[w] = snap.copy()
            else:
                mine.add(snap)

    def merged(self) -> MetricsSnapshot:
        total = MetricsSnapshot(worker="all")
        jr = LatencyHistogram(self.latency_buckets)
        el = LatencyHistogram(self.latency_buckets)
        for snap in self.per_worker.values():
            for k in MetricsSnapshot._COUNTERS:
                setattr(total, k, getattr(total, k) + getattr(snap, k))
            total.max_backlog = max(total.max_backlog, snap.max_backlog)
            if snap.join_rtt:
                jr.merge(snap.join_rtt)
            if snap.event_latency:
                el.merge(snap.event_latency)
        total.join_rtt = jr if jr.count else None
        total.event_latency = el if el.count else None
        return total

    # Convenience accessors used by the perf gate / bench records.
    def latency_percentile(self, q: float) -> float:
        m = self.merged()
        return m.event_latency.percentile(q) if m.event_latency else 0.0

    @property
    def p50_latency_s(self) -> float:
        return self.latency_percentile(50)

    @property
    def p99_latency_s(self) -> float:
        return self.latency_percentile(99)

    def to_json(self) -> Dict[str, Any]:
        out = {
            "merged": self.merged().to_json(),
            "per_worker": {w: s.to_json() for w, s in sorted(self.per_worker.items())},
        }
        if self.attempts:
            out["recovery"] = {k: getattr(self, k) for k in self._RECOVERY_COUNTERS}
        return out

    def prometheus_text(self, extra_labels: str = "") -> str:
        """Render in Prometheus text exposition format.

        ``extra_labels`` (e.g. ``attempt="2"``) is prefixed to every
        sample's label set — how the cluster exporter distinguishes
        attempts of a recovering/elastic run on one endpoint."""
        return prometheus_render([(extra_labels, self)])


def prometheus_render(groups: Sequence[Tuple[str, RunMetrics]]) -> str:
    """Prometheus text for one or more label-prefixed metric groups.

    Each group is ``(extra_labels, metrics)``; ``extra_labels`` (e.g.
    ``attempt="1"``) is prefixed to every sample from that group.  HELP
    and TYPE headers are emitted once per metric name even when several
    groups carry it, keeping multi-attempt exposition valid."""
    lines: List[str] = []

    def lbl(extra: str, labels: str) -> str:
        if extra and labels:
            return f"{extra},{labels}"
        return extra or labels

    for counter, help_ in (
        ("events_processed", "Events processed by the worker loop"),
        ("joins_completed", "Join/fork rounds completed"),
        ("batches_sent", "Transport batches flushed"),
        ("messages_sent", "Messages sent inside batches"),
        ("frames_received", "Wire frames received"),
        ("max_backlog", "High-water mailbox/backlog depth"),
    ):
        name = f"repro_worker_{counter}"
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} gauge")
        for extra, rm in groups:
            for w, s in sorted(rm.per_worker.items()):
                labels = lbl(extra, f'worker="{w}"')
                lines.append(f"{name}{{{labels}}} {float(getattr(s, counter))}")
    for hname, attr in (("join_rtt", "join_rtt"), ("event_latency", "event_latency")):
        base = f"repro_{hname}_seconds"
        lines.append(f"# HELP {base} Latency histogram ({hname})")
        lines.append(f"# TYPE {base} histogram")
        for extra, rm in groups:
            for w, s in sorted(rm.per_worker.items()):
                h: Optional[LatencyHistogram] = getattr(s, attr)
                if h is None:
                    continue
                cum = 0
                wl = lbl(extra, f'worker="{w}"')
                for i, bound in enumerate(h.bounds):
                    cum += h.counts[i]
                    bl = lbl(wl, f'le="{bound:g}"')
                    lines.append(f"{base}_bucket{{{bl}}} {cum}")
                bl = lbl(wl, 'le="+Inf"')
                lines.append(f"{base}_bucket{{{bl}}} {h.count}")
                lines.append(f"{base}_sum{{{wl}}} {h.sum}")
                lines.append(f"{base}_count{{{wl}}} {h.count}")
    for counter, help_ in (
        ("attempts", "Execution attempts the metrics cover"),
        ("replayed_events", "Events replayed by crash recoveries"),
        ("checkpoints_restored", "Checkpoint restores performed"),
        ("reconfigurations", "Completed plan migrations"),
        ("migration_pause_s", "Total driver-side migration pause (s)"),
    ):
        rows = [
            (extra, rm) for extra, rm in groups if rm.attempts
        ]
        if not rows:
            continue
        name = f"repro_run_{counter}"
        lines.append(f"# HELP {name} {help_}")
        lines.append(f"# TYPE {name} gauge")
        for extra, rm in rows:
            labels = f"{{{extra}}}" if extra else ""
            lines.append(f"{name}{labels} {float(getattr(rm, counter))}")
    return "\n".join(lines) + "\n"


def merge_attempt_metrics(
    per_attempt: Sequence[Optional[RunMetrics]],
) -> Optional[RunMetrics]:
    """Whole-run totals from per-attempt :class:`RunMetrics`: counters
    sum, backlogs take the high-water, and latency histograms merge
    across attempts (each attempt's epoch is its own producer-release
    instant, so replayed events contribute their true recovery delay).
    ``None`` entries (attempts that reported no metrics) are skipped;
    all-``None`` input — the metrics plane was off — yields ``None``."""
    real = [m for m in per_attempt if m is not None]
    if not real:
        return None
    total = RunMetrics(latency_buckets=real[0].latency_buckets)
    for m in real:
        total.accumulate(m)
    total.attempts = len(real)
    return total


class MetricsExporter:
    """Tiny stdlib HTTP server publishing Prometheus text on /metrics.

    The coordinator updates the store with whatever snapshots have
    arrived; scrapes never block the data plane.  A plain run uses the
    default attempt bucket (no ``attempt`` label); the recovering and
    elastic cluster paths call :meth:`begin_attempt` before each
    attempt, which keeps every prior attempt's final state scrapeable
    under its ``attempt="n"`` label while the live attempt updates —
    the exporter stays up across the whole multi-attempt run instead
    of going dark at every crash or migration.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        import http.server

        exporter = self

        class Handler(http.server.BaseHTTPRequestHandler):
            def do_GET(self):  # noqa: N802 (stdlib API name)
                if self.path.rstrip("/") not in ("", "/metrics"):
                    self.send_response(404)
                    self.end_headers()
                    return
                body = exporter.render().encode()
                self.send_response(200)
                self.send_header("Content-Type", "text/plain; version=0.0.4")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args):  # silence per-request stderr spam
                pass

        self._lock = threading.Lock()
        #: attempt index -> that attempt's live/final RunMetrics; key 0
        #: is the unlabeled bucket plain (single-attempt) runs use.
        self._attempt = 0
        self._by_attempt: Dict[int, RunMetrics] = {0: RunMetrics()}
        #: Service-tier gauges (repro.serve): name suffix -> value,
        #: rendered as ``repro_serve_<name>``.  Empty outside service
        #: mode, so closed runs expose nothing extra.
        self._service: Dict[str, float] = {}
        self._server = http.server.ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="metrics-exporter", daemon=True
        )

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    def start(self) -> "MetricsExporter":
        self._thread.start()
        return self

    def begin_attempt(self) -> int:
        """Open a new ``attempt="n"`` bucket (1-based) for subsequent
        updates; earlier attempts' final state stays scrapeable."""
        with self._lock:
            self._attempt += 1
            self._by_attempt[self._attempt] = RunMetrics()
            return self._attempt

    def update(self, snap: MetricsSnapshot) -> None:
        with self._lock:
            self._by_attempt[self._attempt].absorb(snap)

    def update_wire(
        self, wire: Tuple[Any, ...], bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        self.update(MetricsSnapshot.from_wire(wire, bounds))

    def set_service_gauges(self, gauges: Dict[str, float]) -> None:
        """Publish service-tier gauges: each ``{name: value}`` renders
        as ``repro_serve_<name> <value>`` on /metrics.  The whole set is
        replaced atomically (the service loop pushes a consistent
        snapshot of its counters after every epoch)."""
        with self._lock:
            self._service = dict(gauges)

    _SERVE_HELP = {
        "admitted_total": "Events admitted by the service ingest tier",
        "rejected_total": "Events rejected by admission control",
        "committed_total": "Outputs committed to the egress log",
        "backlog": "Admitted-but-uncommitted events buffered",
        "epochs_total": "Ingest epochs executed",
        "attempts_total": "Backend attempts run across all epochs",
        "crashes_recovered_total": "Worker crashes recovered across epochs",
        "reconfigurations_total": "Plan migrations completed across epochs",
        "admission_paused": "1 while admission control is rejecting",
    }

    def _render_service(self) -> str:
        # Caller holds self._lock.
        if not self._service:
            return ""
        lines: List[str] = []
        for name, value in sorted(self._service.items()):
            full = f"repro_serve_{name}"
            help_ = self._SERVE_HELP.get(name, "Service-tier gauge")
            lines.append(f"# HELP {full} {help_}")
            lines.append(f"# TYPE {full} gauge")
            lines.append(f"{full} {float(value)}")
        return "\n".join(lines) + "\n"

    def render(self) -> str:
        with self._lock:
            service = self._render_service()
            if self._attempt == 0:
                return service + self._by_attempt[0].prometheus_text()
            groups = [
                (f'attempt="{a}"', rm)
                for a, rm in sorted(self._by_attempt.items())
                if a > 0
            ]
        return service + prometheus_render(groups)

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()


def metrics_to_json_str(metrics: Optional[RunMetrics]) -> str:
    """Stable JSON rendering for artifacts (chaos snapshots)."""
    return json.dumps(metrics.to_json() if metrics else {}, indent=2, sort_keys=True)
