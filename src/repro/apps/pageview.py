"""Page-view join (paper §4.1 & Figure 12).

Input: *page-view* events (visits, skewed so a couple of hot pages get
most traffic, split across several parallel sources per page) and
*update-page-info* events carrying new page metadata.  The goal: join
each view with the latest metadata of its page; processing an update
also outputs the replaced (old) metadata.

Dependence: updates of a page depend on views, gets, and updates of the
same page; views of the same page are mutually independent (the source
of same-key parallelism that sharded engines cannot exploit, §4.2);
different pages are fully independent.

DGS program (Figure 12): state = map page -> metadata; ``fork`` gives
each side the entries for pages mentioned in its predicate — sides may
*share* a page (replicated read-only metadata for view processing);
``join`` merges maps left-biased.  Replication is consistent because an
update of page ``p`` can never run in parallel with anything touching
``p`` (its tag depends on all of ``p``'s tags).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..core.dependence import DependenceRelation
from ..core.events import Event, ImplTag
from ..core.predicates import TagPredicate
from ..core.program import DGSProgram, single_state_program
from ..data.generators import PageViewWorkload, pageview_workload
from ..plans.generation import forest_plan
from ..plans.plan import SyncPlan
from ..runtime.runtime import InputStream

DEFAULT_ZIP = 10_000

State = Dict[int, int]  # page -> zip code


def view_tag(page: int):
    return ("view", page)


def update_tag(page: int):
    return ("update", page)


def tag_universe(n_pages: int) -> List[Any]:
    tags: List[Any] = []
    for p in range(n_pages):
        tags.append(view_tag(p))
        tags.append(update_tag(p))
    return tags


def depends_fn(t1, t2) -> bool:
    kind1, p1 = t1
    kind2, p2 = t2
    if p1 != p2:
        return False
    return "update" in (kind1, kind2)


def _update(state: State, event: Event) -> Tuple[State, List[Any]]:
    kind, page = event.tag
    if kind == "view":
        # The join itself: a real deployment would enrich and forward
        # the view; like the paper's Erlang we read the metadata and
        # produce no output (outputs are measured on updates).
        _ = state.get(page, DEFAULT_ZIP)
        return state, []
    old = state.get(page, DEFAULT_ZIP)
    new = dict(state)
    new[page] = int(event.payload)
    return new, [("old_info", event.ts, page, old)]


def _fork(state: State, pred1: TagPredicate, pred2: TagPredicate) -> Tuple[State, State]:
    def mentions(pred: TagPredicate, page: int) -> bool:
        return view_tag(page) in pred or update_tag(page) in pred

    s1 = {p: z for p, z in state.items() if mentions(pred1, p)}
    s2 = {p: z for p, z in state.items() if mentions(pred2, p)}
    # Pages mentioned by neither side stay with the left state so the
    # fork/join round-trip loses nothing (C2).
    for p, z in state.items():
        if p not in s1 and p not in s2:
            s1[p] = z
    return s1, s2


def _join(s1: State, s2: State) -> State:
    out = dict(s2)
    out.update(s1)  # left-biased merge (util:merge_with taking V1)
    return out


def state_eq(a: State, b: State) -> bool:
    return a == b


def make_program(n_pages: int = 2) -> DGSProgram:
    tags = tag_universe(n_pages)
    return single_state_program(
        name=f"pageview[{n_pages}]",
        tags=tags,
        depends=DependenceRelation.from_function(tags, depends_fn),
        init=dict,
        update=_update,
        fork=_fork,
        join=_join,
    )


def make_workload(
    *,
    n_pages: int = 2,
    n_view_streams: int = 4,
    views_per_update: int = 100,
    n_updates_per_page: int = 10,
    view_rate_per_ms: float = 10.0,
) -> PageViewWorkload:
    return pageview_workload(
        view_tag_fn=view_tag,
        update_tag_fn=update_tag,
        n_pages=n_pages,
        n_view_streams=n_view_streams,
        views_per_update=views_per_update,
        n_updates_per_page=n_updates_per_page,
        view_rate_per_ms=view_rate_per_ms,
    )


def make_streams(
    workload: PageViewWorkload, *, heartbeat_interval: float | None = 1.0
) -> List[InputStream]:
    return [
        InputStream(itag, events, heartbeat_interval=heartbeat_interval)
        for itag, events in workload.all_streams()
    ]


def make_plan(program: DGSProgram, workload: PageViewWorkload) -> SyncPlan:
    """The §4.3 plan: a forest with one tree per page — updates at the
    tree root, that page's view streams at the leaves."""
    by_page: Dict[int, List[ImplTag]] = {}
    for itag in workload.view_streams:
        _, page = itag.tag
        by_page.setdefault(page, []).append(itag)
    subtrees = []
    for uptag in workload.update_streams:
        _, page = uptag.tag
        leaves = [[t] for t in sorted(by_page.get(page, []), key=repr)]
        subtrees.append(([uptag], leaves))
    return forest_plan(program, subtrees)
