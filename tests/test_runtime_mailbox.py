"""Unit tests for the selective-reordering mailbox (§3.4)."""

import pytest

from repro.core import DependenceRelation, Event, ImplTag, InputError
from repro.runtime import Mailbox


def key(tag, stream, ts):
    return Event(tag, stream, ts).order_key


# A small universe: "b" (barrier) depends on everything incl. itself;
# "v" values are mutually independent.
UNI = ["v", "b"]
DEP = DependenceRelation(UNI, {"b": ["b", "v"]})

V0 = ImplTag("v", 0)
V1 = ImplTag("v", 1)
B = ImplTag("b", "bar")


def make_mailbox(itags=(V0, V1, B)):
    return Mailbox(itags, DEP)


class TestBasicRelease:
    def test_independent_tags_release_immediately(self):
        mb = Mailbox([V0, V1], DEP)
        rel = mb.insert(V0, key("v", 0, 1.0), "a")
        assert [b.item for b in rel] == ["a"]
        rel = mb.insert(V1, key("v", 1, 0.5), "b")
        assert [b.item for b in rel] == ["b"]

    def test_dependent_event_waits_for_timer(self):
        mb = make_mailbox()
        # A value at ts=5 must wait until the barrier timer passes 5.
        assert mb.insert(V0, key("v", 0, 5.0), "v5") == []
        assert mb.buffered_count(V0) == 1
        rel = mb.advance(B, key("b", "bar", 10.0))
        assert [b.item for b in rel] == ["v5"]

    def test_barrier_waits_for_both_value_timers(self):
        mb = make_mailbox()
        assert mb.insert(B, key("b", "bar", 5.0), "b5") == []
        assert mb.advance(V0, key("v", 0, 7.0)) == []
        rel = mb.advance(V1, key("v", 1, 6.0))
        assert [b.item for b in rel] == ["b5"]

    def test_buffered_earlier_dependent_event_released_first(self):
        mb = make_mailbox()
        assert mb.insert(V0, key("v", 0, 3.0), "v3") == []
        # Inserting the barrier advances B's timer, which is exactly
        # what v0@3 was waiting for (cascade): v3 releases immediately,
        # while b5 still waits for the v1 timer.
        rel = mb.insert(B, key("b", "bar", 5.0), "b5")
        assert [b.item for b in rel] == ["v3"]
        assert mb.buffered_count() == 1
        # b5 needs *both* value timers to pass 5.
        assert mb.advance(V1, key("v", 1, 9.0)) == []
        rel = mb.advance(V0, key("v", 0, 9.0))
        assert [b.item for b in rel] == ["b5"]

    def test_cascading_release(self):
        # Releasing the barrier unblocks values queued behind it once
        # the barrier frontier passes them.
        mb = make_mailbox()
        mb.insert(B, key("b", "bar", 5.0), "b5")
        mb.insert(V0, key("v", 0, 6.0), "v6")  # blocked: barrier@5 first
        rel = mb.advance(V1, key("v", 1, 8.0))
        assert [b.item for b in rel] == ["b5"]
        # v6 still needs proof that no barrier <= 6 remains.
        rel = mb.advance(B, key("b", "bar", 10.0))
        assert [b.item for b in rel] == ["v6"]

    def test_same_tag_fifo_order(self):
        mb = Mailbox([V0], DEP)
        r1 = mb.insert(V0, key("v", 0, 1.0), "a")
        r2 = mb.insert(V0, key("v", 0, 2.0), "b")
        assert [b.item for b in r1 + r2] == ["a", "b"]


class TestSelfDependence:
    def test_self_dependent_tag_two_streams_ordered(self):
        b2 = ImplTag("b", "bar2")
        mb = Mailbox([B, b2], DEP)
        assert mb.insert(B, key("b", "bar", 5.0), "b5") == []
        rel = mb.advance(b2, key("b", "bar2", 7.0))
        assert [b.item for b in rel] == ["b5"]

    def test_self_dependent_release_in_key_order_across_streams(self):
        b2 = ImplTag("b", "bar2")
        mb = Mailbox([B, b2], DEP)
        mb.insert(B, key("b", "bar", 5.0), "b5")
        rel = mb.insert(b2, key("b", "bar2", 3.0), "b3")
        # b3 releasable (timer of B is 5 >= 3; B's front 5 > 3).
        assert [b.item for b in rel] == ["b3"]
        rel = mb.advance(b2, key("b", "bar2", 9.0))
        assert [b.item for b in rel] == ["b5"]


class TestErrors:
    def test_unknown_itag_rejected(self):
        mb = Mailbox([V0], DEP)
        with pytest.raises(InputError):
            mb.insert(ImplTag("v", 99), key("v", 99, 1.0), "x")
        with pytest.raises(InputError):
            mb.advance(ImplTag("v", 99), key("v", 99, 1.0))

    def test_non_monotone_insert_rejected(self):
        # Use the barrier tag so the first item stays buffered.
        mb = make_mailbox()
        mb.insert(B, key("b", "bar", 5.0), "a")
        with pytest.raises(InputError, match="non-monotone"):
            mb.insert(B, key("b", "bar", 4.0), "b")

    def test_insert_behind_timer_rejected(self):
        mb = Mailbox([V0], DEP)
        mb.insert(V0, key("v", 0, 5.0), "a")  # released immediately
        with pytest.raises(InputError, match="behind"):
            mb.insert(V0, key("v", 0, 4.0), "b")

    def test_insert_behind_heartbeat_rejected(self):
        mb = Mailbox([V0], DEP)
        mb.advance(V0, key("v", 0, 10.0))
        with pytest.raises(InputError, match="behind"):
            mb.insert(V0, key("v", 0, 5.0), "late")

    def test_stale_heartbeat_is_noop(self):
        mb = make_mailbox()
        mb.advance(B, key("b", "bar", 10.0))
        assert mb.advance(B, key("b", "bar", 3.0)) == []
        assert mb.timer(B) == key("b", "bar", 10.0)


class TestFrontier:
    def test_frontier_none_when_buffered(self):
        mb = make_mailbox()
        mb.insert(B, key("b", "bar", 5.0), "b5")
        assert mb.frontier(B) is None

    def test_frontier_is_timer_when_empty(self):
        mb = make_mailbox()
        mb.advance(B, key("b", "bar", 5.0))
        assert mb.frontier(B) == key("b", "bar", 5.0)

    def test_frontier_after_release(self):
        mb = make_mailbox()
        mb.insert(B, key("b", "bar", 5.0), "b5")
        mb.advance(V0, key("v", 0, 6.0))
        mb.advance(V1, key("v", 1, 6.0))
        assert mb.buffer_empty(B)
        assert mb.frontier(B) == key("b", "bar", 5.0)
