"""Tests for the Appendix-B communication optimizer and the cost model."""

import pytest

from repro.core import ImplTag
from repro.plans import (
    StreamInfo,
    compare_plans,
    estimate_cost,
    is_p_valid,
    optimize,
    root_and_leaves_plan,
    chain_plan,
    sequential_plan,
)
from repro.apps import keycounter as kc


def example_b1_streams():
    """The exact scenario of the paper's Example B.1 (key 0 = "key 1")."""
    return [
        StreamInfo(ImplTag(kc.reset_tag(0), "E1"), 15, "E1"),
        StreamInfo(ImplTag(kc.inc_tag(0), "E1"), 100, "E1"),
        StreamInfo(ImplTag(kc.reset_tag(1), "E0"), 10, "E0"),
        StreamInfo(ImplTag(kc.inc_tag(1), "E2"), 200, "E2"),
        StreamInfo(ImplTag(kc.inc_tag(1), "E3"), 300, "E3"),
    ]


class TestOptimizer:
    def test_example_b1_structure(self):
        """Reproduces Figure 3/9: two key subtrees; key-1's r at an
        internal node over one leaf per increment stream."""
        prog = kc.make_program(2)
        plan = optimize(prog, example_b1_streams())
        assert is_p_valid(plan, prog)
        assert plan.size() == 5
        # Root is neutral (keys are independent).
        assert plan.root.itags == frozenset()
        # One subtree is the single-worker key-0 leaf.
        leaf_tag_sets = [n.itags for n in plan.leaves()]
        key0 = frozenset(
            {ImplTag(kc.reset_tag(0), "E1"), ImplTag(kc.inc_tag(0), "E1")}
        )
        assert key0 in leaf_tag_sets
        # The r(1) tag sits at an internal node above the two i(1) leaves.
        r1_owner = plan.owner_of(ImplTag(kc.reset_tag(1), "E0"))
        assert not r1_owner.is_leaf
        child_tags = {t for c in r1_owner.children for t in c.itags}
        assert child_tags == {
            ImplTag(kc.inc_tag(1), "E2"),
            ImplTag(kc.inc_tag(1), "E3"),
        }

    def test_placement_near_sources(self):
        prog = kc.make_program(2)
        plan = optimize(prog, example_b1_streams())
        for info in example_b1_streams():
            owner = plan.owner_of(info.itag)
            if owner.is_leaf:
                assert owner.host == info.host

    def test_all_itags_covered_once(self):
        prog = kc.make_program(2)
        plan = optimize(prog, example_b1_streams())
        seen = sorted(
            (t for n in plan.workers() for t in n.itags), key=repr
        )
        expected = sorted((s.itag for s in example_b1_streams()), key=repr)
        assert seen == expected

    def test_single_stream(self):
        prog = kc.make_program(1)
        plan = optimize(
            prog, [StreamInfo(ImplTag(kc.inc_tag(0), 0), 10, "h0")]
        )
        assert plan.size() == 1
        assert plan.root.host == "h0"

    def test_fully_dependent_tags_sequentialize(self):
        # Only read-resets: every pair is dependent -> one worker.
        prog = kc.make_program(1)
        streams = [
            StreamInfo(ImplTag(kc.reset_tag(0), s), 5 + s, f"h{s}") for s in range(3)
        ]
        plan = optimize(prog, streams)
        assert plan.size() == 1

    def test_value_barrier_shape(self):
        # Barrier tag at the root, one leaf per value stream.
        from repro.apps import keycounter  # reuse counter as value/barrier proxy

        prog = kc.make_program(1)
        streams = [
            StreamInfo(ImplTag(kc.inc_tag(0), f"v{s}"), 100, f"h{s}")
            for s in range(4)
        ]
        streams.append(StreamInfo(ImplTag(kc.reset_tag(0), "b"), 1, "hb"))
        plan = optimize(prog, streams)
        assert is_p_valid(plan, prog)
        owner = plan.owner_of(ImplTag(kc.reset_tag(0), "b"))
        assert not owner.is_leaf  # barrier is at an internal node
        assert len(plan.leaves()) == 4

    def test_duplicate_stream_rejected(self):
        prog = kc.make_program(1)
        s = StreamInfo(ImplTag(kc.inc_tag(0), 0), 1, "h")
        from repro.core import PlanError

        with pytest.raises(PlanError):
            optimize(prog, [s, s])

    def test_empty_streams_rejected(self):
        from repro.core import PlanError

        with pytest.raises(PlanError):
            optimize(kc.make_program(1), [])


class TestCostModel:
    def _vb(self, n_leaves, shape="balanced"):
        prog = kc.make_program(1)
        root_tags = [ImplTag(kc.reset_tag(0), "b")]
        groups = [[ImplTag(kc.inc_tag(0), f"v{s}")] for s in range(n_leaves)]
        fn = root_and_leaves_plan if shape == "balanced" else chain_plan
        plan = fn(prog, root_tags, groups)
        from repro.plans import assign_hosts_round_robin

        plan = assign_hosts_round_robin(plan, [f"h{i}" for i in range(n_leaves)])
        rates = {ImplTag(kc.inc_tag(0), f"v{s}"): 100.0 for s in range(n_leaves)}
        rates[ImplTag(kc.reset_tag(0), "b")] = 0.01
        return prog, plan, rates

    def test_sync_cost_grows_with_tree_size(self):
        _, small, rates_small = self._vb(2)
        _, large, rates_large = self._vb(8)
        c_small = estimate_cost(small, rates_small)
        c_large = estimate_cost(large, rates_large)
        assert c_large.sync_messages_per_ms > c_small.sync_messages_per_ms

    def test_chain_stalls_more_than_balanced(self):
        _, bal, rates = self._vb(8, "balanced")
        _, chain, _ = self._vb(8, "chain")
        cb = estimate_cost(bal, rates)
        cc = estimate_cost(chain, rates)
        assert cc.sync_stall_fraction >= cb.sync_stall_fraction

    def test_parallel_beats_sequential_in_bound(self):
        prog, plan, rates = self._vb(8)
        seq = sequential_plan(prog, list(rates))
        c_par = estimate_cost(plan, rates)
        c_seq = estimate_cost(seq, rates)
        assert (
            c_par.throughput_bound_events_per_ms
            > c_seq.throughput_bound_events_per_ms
        )

    def test_compare_plans_returns_all(self):
        prog, plan, rates = self._vb(4)
        seq = sequential_plan(prog, list(rates))
        result = compare_plans({"par": plan, "seq": seq}, rates)
        assert set(result) == {"par", "seq"}
