"""The CI perf gate: compare ``BENCH_*.json`` results to baselines.

Every benchmark writes a machine-readable record
(:func:`repro.bench.harness.bench_record` +
:func:`repro.bench.tables.publish_json`) into ``benchmarks/results/``.
Records that declare *gate metrics* participate in the gate: CI runs
the smoke benchmarks, then compares each gated metric against the
committed baseline under ``benchmarks/baselines/`` and fails on a
regression beyond the tolerance (default 25%).

Directionality lives in the record (``"gate": {"metric": "higher" |
"lower"}``): throughput-like metrics fail when they *drop*,
latency-like metrics fail when they *rise*.  Records without gate
entries are trajectory-only — uploaded as artifacts, never blocking.

Baselines are machine-dependent (they capture absolute throughput on
the CI runner class).  Every record carries a ``host`` provenance
stamp (core count, python version, platform); when a result was
measured on a *different* host class than its baseline — a laptop
checking against CI numbers, or a runner-class change — failing checks
on that record are downgraded to advisory warnings instead of gate
failures, because comparing absolute throughput across machines is
noise, not signal.  Matching hosts keep the gate fail-closed.
Refresh baselines whenever the hot path genuinely
changes or CI hardware shifts::

    PYTHONPATH=src python -m pytest benchmarks/bench_micro_core.py \\
        benchmarks/bench_transport.py \\
        benchmarks/bench_latency_openloop.py \\
        benchmarks/bench_adversarial.py --smoke -q
    PYTHONPATH=src python benchmarks/perf_gate.py rebase

and commit the updated ``benchmarks/baselines/*.json``.
"""

from __future__ import annotations

import glob
import json
import math
import os
import shutil
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .harness import BENCH_SCHEMA

DEFAULT_TOLERANCE = 0.25


@dataclass(frozen=True)
class GateCheck:
    """One gated metric's verdict.

    ``advisory`` marks a check whose record was measured on a
    different host class than its baseline: a failing advisory check
    prints as ``warn`` and never fails the gate."""

    name: str
    metric: str
    direction: str
    baseline: float
    measured: float
    ok: bool
    advisory: bool = False
    note: str = ""

    @property
    def change(self) -> float:
        """Relative change, signed so positive is always *better*."""
        if self.baseline == 0:
            return 0.0
        delta = (self.measured - self.baseline) / abs(self.baseline)
        return delta if self.direction == "higher" else -delta

    def describe(self) -> str:
        verdict = "ok  " if self.ok else ("warn" if self.advisory else "FAIL")
        suffix = f" [{self.note}]" if self.note else ""
        return (
            f"  [{verdict}] {self.name}.{self.metric}: "
            f"baseline {self.baseline:g} -> measured {self.measured:g} "
            f"({self.change:+.1%}, {self.direction} is better){suffix}"
        )


def host_mismatch(base: dict, result: dict) -> Optional[str]:
    """Describe the first provenance-relevant difference between two
    records' ``host`` stamps, or ``None`` when they match.

    Compares the knobs that change absolute throughput class: core
    count, python major.minor, and the platform's leading token
    (``Linux`` vs ``Darwin`` — distro/kernel point releases within a
    platform are deliberately ignored).  Records that predate host
    stamps compare as matching, keeping the gate fail-closed for
    them."""
    bh, rh = base.get("host") or {}, result.get("host") or {}
    if not bh or not rh:
        return None
    if bh.get("cores") != rh.get("cores"):
        return f"cores {bh.get('cores')} vs {rh.get('cores')}"
    bpy = str(bh.get("python", "")).rsplit(".", 1)[0]
    rpy = str(rh.get("python", "")).rsplit(".", 1)[0]
    if bpy != rpy:
        return f"python {bh.get('python')} vs {rh.get('python')}"
    bplat = str(bh.get("platform", "")).split("-", 1)[0]
    rplat = str(rh.get("platform", "")).split("-", 1)[0]
    if bplat != rplat:
        return f"platform {bplat!r} vs {rplat!r}"
    return None


def load_records(directory: str) -> Dict[str, dict]:
    """All ``BENCH_*.json`` records in a directory, keyed by name."""
    records: Dict[str, dict] = {}
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        with open(path) as f:
            rec = json.load(f)
        records[rec.get("name", os.path.basename(path))] = rec
    return records


def compare(
    results: Dict[str, dict],
    baselines: Dict[str, dict],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[List[GateCheck], List[str]]:
    """Gate every baselined metric; returns (checks, problems).

    A missing result record, a missing metric, or a schema mismatch is
    a *problem* (the gate fails closed: silently skipping a comparison
    would let a deleted benchmark pass forever)."""
    checks: List[GateCheck] = []
    problems: List[str] = []
    for name, base in sorted(baselines.items()):
        gate = base.get("gate") or {}
        if not gate:
            continue
        result = results.get(name)
        if result is None:
            problems.append(
                f"baseline {name!r} has no matching BENCH_{name}.json result "
                "(benchmark removed or not run?)"
            )
            continue
        if result.get("schema") != base.get("schema", BENCH_SCHEMA):
            problems.append(
                f"{name!r}: schema mismatch "
                f"({result.get('schema')} vs {base.get('schema')}); rebase the baseline"
            )
            continue
        mismatch = host_mismatch(base, result)
        advisory = mismatch is not None
        note = f"host mismatch: {mismatch}; advisory only" if advisory else ""
        for metric, direction in sorted(gate.items()):
            baseline_value = base.get("metrics", {}).get(metric)
            measured = result.get("metrics", {}).get(metric)
            if not isinstance(baseline_value, (int, float)) or not isinstance(
                measured, (int, float)
            ):
                problems.append(
                    f"{name!r}.{metric}: not a number in baseline/result "
                    f"({baseline_value!r} vs {measured!r})"
                )
                continue
            if not math.isfinite(baseline_value) or not math.isfinite(measured):
                # Latency percentiles read +inf when the tail escaped
                # the histogram's top bucket; a non-finite baseline
                # would also make every later comparison vacuous.
                problems.append(
                    f"{name!r}.{metric}: non-finite value "
                    f"(baseline {baseline_value!r}, measured {measured!r}); "
                    "a percentile of inf means the latency histogram "
                    "overflowed — widen the buckets or fix the regression"
                )
                continue
            if direction == "higher":
                ok = measured >= baseline_value * (1.0 - tolerance)
            else:
                ok = measured <= baseline_value * (1.0 + tolerance)
            checks.append(
                GateCheck(
                    name, metric, direction, baseline_value, measured, ok,
                    advisory=advisory, note=note,
                )
            )
    return checks, problems


def check_dirs(
    results_dir: str,
    baselines_dir: str,
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Tuple[bool, str]:
    """Run the gate over two directories; returns (ok, report text)."""
    results = load_records(results_dir)
    baselines = load_records(baselines_dir)
    checks, problems = compare(results, baselines, tolerance=tolerance)
    lines = [
        f"perf gate: {len(checks)} gated metric(s), tolerance {tolerance:.0%}",
        f"  results:   {results_dir} ({len(results)} record(s))",
        f"  baselines: {baselines_dir} ({len(baselines)} record(s))",
    ]
    lines.extend(c.describe() for c in checks)
    lines.extend(f"  [FAIL] {p}" for p in problems)
    if not baselines:
        problems.append(f"no baselines found under {baselines_dir}")
        lines.append(f"  [FAIL] no baselines found under {baselines_dir}")
    warns = [c for c in checks if not c.ok and c.advisory]
    if warns:
        lines.append(
            f"perf gate: {len(warns)} advisory warning(s) — result host "
            "differs from baseline host; run on the baseline's runner "
            "class (or rebase) for an enforceable comparison"
        )
    ok = not problems and all(c.ok or c.advisory for c in checks)
    lines.append("perf gate: PASS" if ok else "perf gate: FAIL")
    if not ok:
        # Make the failure actionable straight from the CI log: the
        # documented recovery flow, verbatim.
        lines.extend(
            [
                "",
                "If this change is intentional (or the runner class "
                "changed), refresh the baselines:",
                "    PYTHONPATH=src python -m pytest "
                "benchmarks/bench_micro_core.py \\",
                "        benchmarks/bench_transport.py \\",
                "        benchmarks/bench_latency_openloop.py \\",
                "        benchmarks/bench_adversarial.py --smoke -q",
                "    PYTHONPATH=src python benchmarks/perf_gate.py rebase",
                "and commit benchmarks/baselines/*.json.",
            ]
        )
    return ok, "\n".join(lines)


def rebase(results_dir: str, baselines_dir: str) -> List[str]:
    """Copy every *gated* result record over the committed baselines
    (the documented regeneration step).  Returns the written paths."""
    os.makedirs(baselines_dir, exist_ok=True)
    written: List[str] = []
    for name, rec in sorted(load_records(results_dir).items()):
        if not rec.get("gate"):
            continue
        src = os.path.join(results_dir, f"BENCH_{name}.json")
        dst = os.path.join(baselines_dir, f"BENCH_{name}.json")
        shutil.copyfile(src, dst)
        written.append(dst)
    return written


def main(argv: List[str]) -> int:
    import argparse

    repo_benchmarks = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks"
    )
    parser = argparse.ArgumentParser(
        prog="perf_gate",
        description="Gate BENCH_*.json results against committed baselines.",
    )
    parser.add_argument("command", choices=("check", "rebase"))
    parser.add_argument(
        "--results", default=os.path.join(repo_benchmarks, "results")
    )
    parser.add_argument(
        "--baselines", default=os.path.join(repo_benchmarks, "baselines")
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("PERF_GATE_TOLERANCE", DEFAULT_TOLERANCE)),
        help="allowed relative regression (default 0.25 = 25%%, "
        "or env PERF_GATE_TOLERANCE)",
    )
    args = parser.parse_args(argv)
    if args.command == "rebase":
        written = rebase(args.results, args.baselines)
        for path in written:
            print(f"rebased {path}")
        if not written:
            print("no gated records under", args.results)
            return 1
        return 0
    ok, report = check_dirs(
        args.results, args.baselines, tolerance=args.tolerance
    )
    print(report)
    return 0 if ok else 1
