"""Selective reordering mailbox (paper §3.4, "Event reordering").

Each worker's mailbox holds, per implementation tag it may receive
(its own tags plus all ancestors' tags):

* a FIFO **buffer** of pending items (events or join requests), which
  arrive in increasing order-key order per tag (producers are monotone,
  parents dispatch join requests in processing order, and channels are
  FIFO);
* a **timer**: the largest order key seen for the tag (events,
  heartbeats, or join requests).

An item with tag ``s`` and key ``k`` is *released* to the worker when

1. it is at the front of its own buffer, and
2. for every tag ``s'`` that ``s`` depends on: ``timer[s'] >= k`` (the
   mailbox has proof no earlier ``s'`` item is still in flight) and the
   front of ``s'``'s buffer (if any) has key ``> k`` (earlier dependent
   items are processed first).

Releases cascade through a tag workset exactly as described in the
paper.  The mailbox is pure data-structure logic — no simulator
dependencies — so it is unit-testable and reusable by both the
simulated and the threaded runtimes.

Columnar runs (:class:`~repro.runtime.messages.EventRun`) buffer as a
*single* item keyed at their first event and release under exactly the
per-event rule: when a run's front is releasable, the mailbox releases
the maximal prefix every event of which satisfies the release
condition, splitting the run when a dependent tag's timer or buffered
front caps it.  ``buffered_count`` stays event-level (a run of ``n``
counts ``n``), so backlog signals and drain checks are unchanged.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, Optional, Tuple

from ..core.dependence import DependenceRelation
from ..core.errors import InputError
from ..core.events import ImplTag
from .messages import EventRun

OrderKey = Tuple

NEG_INF_KEY: OrderKey = (float("-inf"),)


@dataclass(frozen=True)
class Buffered:
    """An item awaiting release: its tag, order key and payload."""

    itag: ImplTag
    key: OrderKey
    item: Any


class Mailbox:
    """Selective reordering over a fixed set of known implementation tags."""

    def __init__(
        self,
        known_itags: Iterable[ImplTag],
        depends: DependenceRelation,
    ) -> None:
        self.itags: FrozenSet[ImplTag] = frozenset(known_itags)
        self._buffers: Dict[ImplTag, Deque[Buffered]] = {
            t: deque() for t in self.itags
        }
        self._timers: Dict[ImplTag, OrderKey] = {t: NEG_INF_KEY for t in self.itags}
        #: Incrementally-maintained total of all buffered items, so the
        #: backlog queries on the join path (every JoinResponse reports
        #: queue depth) stay O(1) instead of O(tags).
        self._total_buffered = 0
        # Precompute, for each tag, which known tags it depends on
        # (excluding itself: same-tag ordering is the buffer's FIFO).
        self._deps: Dict[ImplTag, Tuple[ImplTag, ...]] = {}
        for a in self.itags:
            self._deps[a] = tuple(
                b for b in self.itags if b != a and depends.itag_depends(a, b)
            )
        # Reverse direction: tags whose release may be unblocked when
        # `a` makes progress.
        self._rdeps: Dict[ImplTag, Tuple[ImplTag, ...]] = {}
        for a in self.itags:
            self._rdeps[a] = tuple(
                b for b in self.itags if b != a and a in self._deps[b]
            )

    # -- queries -----------------------------------------------------------
    def timer(self, itag: ImplTag) -> OrderKey:
        return self._timers[itag]

    def buffered_count(self, itag: Optional[ImplTag] = None) -> int:
        if itag is not None:
            return sum(
                len(b.item) if type(b.item) is EventRun else 1
                for b in self._buffers[itag]
            )
        return self._total_buffered

    def buffer_empty(self, itag: ImplTag) -> bool:
        return not self._buffers[itag]

    def frontier(self, itag: ImplTag) -> Optional[OrderKey]:
        """The key up to which this mailbox can *vouch* for ``itag``:
        the timer, but only when nothing for the tag is still buffered
        (a buffered item may turn into a join request with a smaller
        key than the timer).  ``None`` = cannot vouch beyond what
        children already know."""
        if self._buffers[itag]:
            return None
        return self._timers[itag]

    # -- mutation -----------------------------------------------------------
    def insert(self, itag: ImplTag, key: OrderKey, item: Any) -> List[Buffered]:
        """Buffer an item and return everything releasable, in order."""
        if itag not in self.itags:
            raise InputError(f"mailbox does not know itag {itag!r}")
        buf = self._buffers[itag]
        if buf and buf[-1].key >= key:
            raise InputError(
                f"non-monotone arrival for {itag!r}: {key} after {buf[-1].key}"
            )
        if self._timers[itag] > key:
            raise InputError(
                f"item for {itag!r} arrives behind its heartbeat frontier"
            )
        buf.append(Buffered(itag, key, item))
        self._total_buffered += 1
        self._timers[itag] = key
        return self._cascade(itag)

    def insert_run(self, run: EventRun) -> List[Buffered]:
        """Buffer a columnar run as one item (keyed at its first event)
        and return everything releasable, in order.

        The run's internal keys are strictly increasing by stream
        monotonicity (one route, one monotone producer), so only the
        boundary conditions need checking; the timer advances straight
        to the run's last key — exactly what inserting the events one
        by one would have left behind."""
        itag = run.itag
        if itag not in self.itags:
            raise InputError(f"mailbox does not know itag {itag!r}")
        first = run.first_key
        buf = self._buffers[itag]
        if buf and buf[-1].key >= first:
            raise InputError(
                f"non-monotone arrival for {itag!r}: {first} after {buf[-1].key}"
            )
        if self._timers[itag] > first:
            raise InputError(
                f"item for {itag!r} arrives behind its heartbeat frontier"
            )
        buf.append(Buffered(itag, first, run))
        self._total_buffered += len(run)
        self._timers[itag] = run.last_key
        return self._cascade(itag)

    def advance(self, itag: ImplTag, key: OrderKey) -> List[Buffered]:
        """Heartbeat: advance the timer without buffering anything."""
        if itag not in self.itags:
            raise InputError(f"mailbox does not know itag {itag!r}")
        if key <= self._timers[itag]:
            return []  # stale heartbeat, nothing new
        self._timers[itag] = key
        return self._cascade(itag)

    # -- release machinery ----------------------------------------------------
    def _releasable(self, front: Buffered) -> bool:
        for dep in self._deps[front.itag]:
            if self._timers[dep] < front.key:
                return False
            dep_buf = self._buffers[dep]
            if dep_buf and dep_buf[0].key < front.key:
                return False
        return True

    def _release_bound(self, tag: ImplTag) -> Optional[OrderKey]:
        """Inclusive key bound up to which ``tag``'s events may release:
        the minimum over dependent tags of their timer and (if buffered)
        their front item's key.  ``None`` means unconstrained (no deps)."""
        bound: Optional[OrderKey] = None
        for dep in self._deps[tag]:
            t = self._timers[dep]
            if bound is None or t < bound:
                bound = t
            dep_buf = self._buffers[dep]
            if dep_buf and dep_buf[0].key < bound:
                bound = dep_buf[0].key
        return bound

    def _cascade(self, seed: ImplTag) -> List[Buffered]:
        """The paper's cascading-release procedure with a tag workset."""
        released: List[Buffered] = []
        workset: List[ImplTag] = [seed]
        workset.extend(self._rdeps[seed])
        in_set = set(workset)
        any_runs = False
        while workset:
            tag = workset.pop()
            in_set.discard(tag)
            buf = self._buffers[tag]
            progressed = False
            while buf and self._releasable(buf[0]):
                front = buf[0]
                item = front.item
                if type(item) is EventRun:
                    any_runs = True
                    bound = self._release_bound(tag)
                    if bound is not None and item.last_key > bound:
                        # Only a prefix of the run is releasable; split
                        # at the bound (inclusive).  The front being
                        # releasable guarantees a non-empty prefix, and
                        # the remainder is provably blocked, so stop.
                        n_rel = bisect_right(item.keys(), bound)
                        prefix, rest = item.split(n_rel)
                        released.append(Buffered(tag, front.key, prefix))
                        buf[0] = Buffered(tag, rest.first_key, rest)
                        self._total_buffered -= n_rel
                        progressed = True
                        break
                    buf.popleft()
                    released.append(front)
                    self._total_buffered -= len(item)
                else:
                    buf.popleft()
                    released.append(front)
                    self._total_buffered -= 1
                progressed = True
            if progressed:
                for nxt in self._rdeps[tag]:
                    if nxt not in in_set:
                        workset.append(nxt)
                        in_set.add(nxt)
                # Our own later items may also now be releasable; the
                # inner while loop already drained them greedily.
        released.sort(key=lambda b: b.key)
        if any_runs and len(released) > 1:
            self._split_straddles(released)
        return released

    @staticmethod
    def _split_straddles(released: List[Buffered]) -> None:
        """Enforce global per-event key order across a released batch.

        ``released`` is sorted by (first) key, but a released run may
        *span* a later-released item of another tag (possible under
        asymmetric dependence: the run's tag has no dep on the other
        tag, so its bound never saw it).  Split any such run at the next
        item's key so consumers processing the list front-to-back see
        events in global order, exactly as the per-event path would."""
        i = 0
        while i < len(released) - 1:
            b = released[i]
            item = b.item
            if type(item) is EventRun and item.last_key > released[i + 1].key:
                n = bisect_right(item.keys(), released[i + 1].key)
                prefix, rest = item.split(n)
                released[i] = Buffered(b.itag, b.key, prefix)
                insort(
                    released,
                    Buffered(b.itag, rest.first_key, rest),
                    lo=i + 1,
                    key=lambda x: x.key,
                )
            i += 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Mailbox(tags={len(self.itags)}, buffered={self.buffered_count()})"
