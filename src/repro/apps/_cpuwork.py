"""Per-event CPU work for wall-clock benchmarks.

The paper's applications have trivial update functions (integer adds),
so wall-clock runs of them measure message passing rather than
computation.  The ``make_cpu_program`` variants burn a controlled
amount of interpreter work per event through :func:`burn`, standing in
for real per-event cost (feature extraction, model scoring) — the
regime where a multi-core substrate can show genuine speedup.
"""

from __future__ import annotations


def burn(seed: int, spin: int) -> int:
    """Run ``spin`` LCG iterations seeded by ``seed``; returns 0.

    The zero is folded from the final LCG state so the loop's result
    feeds the caller's arithmetic — callers add it to their payload,
    keeping update semantics identical to the plain program.
    """
    acc = seed
    for _ in range(spin):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return (acc & 1) - (acc & 1)
