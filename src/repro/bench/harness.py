"""Measurement harness (paper §4 methodology).

The paper measures *maximum throughput* by "increasing the input rate
until throughput stabilizes or the system crashes", and latency as
percentiles at a fixed offered rate.  The harness mirrors that:

* :func:`max_throughput` — geometric rate sweep; a configuration is
  saturated when achieved throughput falls below ``efficiency`` of the
  offered rate; the reported maximum is the best achieved rate.
* :func:`latency_profile` — percentiles of output latency across a
  ramp of offered rates (Figure 6's axes).

``run_at_rate`` callbacks receive an events-per-millisecond *per
input stream* rate and return any object exposing
``throughput_events_per_ms`` and ``latency_percentiles`` (all engine
results in this repository do).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Protocol, Sequence, Tuple


class ResultLike(Protocol):  # pragma: no cover - structural typing only
    @property
    def throughput_events_per_ms(self) -> float: ...

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]: ...


@dataclass(frozen=True)
class RatePoint:
    """One measured point on an offered-rate sweep."""

    offered_per_ms: float
    achieved_per_ms: float
    latency_p10: float
    latency_p50: float
    latency_p90: float

    @property
    def efficiency(self) -> float:
        return (
            self.achieved_per_ms / self.offered_per_ms
            if self.offered_per_ms > 0
            else 0.0
        )


@dataclass
class SweepResult:
    points: List[RatePoint] = field(default_factory=list)

    @property
    def max_throughput(self) -> float:
        return max((p.achieved_per_ms for p in self.points), default=0.0)

    def saturation_point(self, efficiency: float = 0.9) -> Optional[RatePoint]:
        for p in self.points:
            if p.efficiency < efficiency:
                return p
        return None


def _measure(run_at_rate: Callable[[float], Any], rate: float) -> RatePoint:
    res = run_at_rate(rate)
    p10, p50, p90 = res.latency_percentiles((10, 50, 90))
    # Offered load = total events over the injection window; results
    # expose input_span_ms precisely so efficiency is scale-free
    # (duration converging to the input span means "keeping up").
    span = getattr(res, "input_span_ms", None)
    events_in = getattr(res, "events_in", None)
    if span and events_in:
        offered = events_in / span
    else:  # pragma: no cover - non-standard result object
        offered = rate
    return RatePoint(
        offered_per_ms=offered,
        achieved_per_ms=res.throughput_events_per_ms,
        latency_p10=p10,
        latency_p50=p50,
        latency_p90=p90,
    )


def max_throughput(
    run_at_rate: Callable[[float], Any],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> SweepResult:
    """Geometric offered-rate sweep until saturation.

    The sweep stops one step after the first rate whose achieved
    throughput drops below ``efficiency * offered`` (by then the
    system is clearly saturated; pushing further only slows the
    simulation)."""
    sweep = SweepResult()
    rate = start_rate
    saturated_steps = 0
    for _ in range(max_steps):
        point = _measure(run_at_rate, rate)
        sweep.points.append(point)
        if point.efficiency < efficiency:
            saturated_steps += 1
            if saturated_steps >= 2:
                break
        rate *= growth
    return sweep


def latency_profile(
    run_at_rate: Callable[[float], Any],
    rates: Sequence[float],
) -> List[RatePoint]:
    """Latency percentiles across a fixed ramp of offered rates
    (the x/y data of Figure 6)."""
    return [_measure(run_at_rate, r) for r in rates]


@dataclass(frozen=True)
class ScalingPoint:
    parallelism: int
    max_throughput_per_ms: float


def scaling_curve(
    run_factory: Callable[[int], Callable[[float], Any]],
    parallelism_levels: Sequence[int],
    *,
    start_rate: float = 50.0,
    growth: float = 2.0,
    max_steps: int = 7,
    efficiency: float = 0.9,
) -> List[ScalingPoint]:
    """Max throughput as a function of parallelism (Figures 4 and 8).

    ``run_factory(p)`` returns the ``run_at_rate`` callback for
    parallelism ``p``."""
    out: List[ScalingPoint] = []
    for p in parallelism_levels:
        sweep = max_throughput(
            run_factory(p),
            start_rate=start_rate,
            growth=growth,
            max_steps=max_steps,
            efficiency=efficiency,
        )
        out.append(ScalingPoint(p, sweep.max_throughput))
    return out


def speedup(points: Sequence[ScalingPoint]) -> List[Tuple[int, float]]:
    """Normalize a scaling curve by its first point."""
    if not points:
        return []
    base = points[0].max_throughput_per_ms
    if base <= 0 or math.isnan(base):
        return [(p.parallelism, math.nan) for p in points]
    return [(p.parallelism, p.max_throughput_per_ms / base) for p in points]
