"""End-to-end correctness tests for the Flumina-style runtime: the
output multiset must match the sequential specification for every
P-valid plan (Theorem 3.5 / Definition 3.4)."""

import random
from collections import Counter

import pytest

from repro.core import Event, ImplTag, ValidityError
from repro.plans import (
    PlanNode,
    SyncPlan,
    chain_plan,
    random_valid_plan,
    root_and_leaves_plan,
    sequential_plan,
)
from repro.runtime import FluminaRuntime, InputStream, run_sequential_reference
from repro.apps import keycounter as kc


def value_barrier_streams(n_values=3, n_events=40, barrier_every=10.0, hb=2.0):
    """Increment streams plus one reset stream over a single key."""
    streams = []
    for s in range(n_values):
        it = ImplTag(kc.inc_tag(0), f"v{s}")
        evs = tuple(
            Event(it.tag, it.stream, t * 1.0 + s * 0.13 + 0.01)
            for t in range(1, n_events + 1)
        )
        streams.append(InputStream(it, evs, heartbeat_interval=hb))
    rit = ImplTag(kc.reset_tag(0), "b")
    n_resets = int(n_events / barrier_every) + 1
    resets = tuple(
        Event(rit.tag, rit.stream, t * barrier_every) for t in range(1, n_resets)
    )
    streams.append(InputStream(rit, resets, heartbeat_interval=hb))
    return streams


def outputs_match(program, plan, streams):
    rt = FluminaRuntime(program, plan)
    res = rt.run(streams)
    got = Counter(res.output_values())
    want = Counter(run_sequential_reference(program, streams))
    return got == want, res


class TestSequentialPlan:
    def test_single_worker_matches_spec(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(2, 20)
        itags = [s.itag for s in streams]
        plan = sequential_plan(prog, itags)
        ok, res = outputs_match(prog, plan, streams)
        assert ok
        assert res.joins == 0  # no children, no joins

    def test_single_stream_single_worker(self):
        prog = kc.make_program(1)
        it = ImplTag(kc.inc_tag(0), 0)
        evs = tuple(Event(it.tag, 0, float(t)) for t in range(1, 11))
        streams = [InputStream(it, evs)]
        plan = sequential_plan(prog, [it])
        ok, res = outputs_match(prog, plan, streams)
        assert ok and res.events_processed == 10


class TestTreePlans:
    def test_value_barrier_tree_matches_spec(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(4, 40)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        ok, res = outputs_match(prog, plan, streams)
        assert ok
        assert res.joins > 0

    def test_chain_plan_matches_spec(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(4, 30)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = chain_plan(prog, [streams[-1].itag], leaf)
        ok, _ = outputs_match(prog, plan, streams)
        assert ok

    def test_join_count_scales_with_tree(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(4, 40, barrier_every=10.0)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        _, res = outputs_match(prog, plan, streams)
        n_barriers = len(streams[-1].events)
        n_internal = len(plan.internal())
        assert res.joins == n_barriers * n_internal

    def test_outputs_have_positive_latency(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(3, 30)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        rt = FluminaRuntime(prog, plan)
        res = rt.run(streams)
        assert all(lat > 0 for lat in res.latencies())


class TestInvalidPlansRejected:
    def test_invalid_plan_raises(self):
        prog = kc.make_program(1)
        # Two unrelated workers sharing a dependent tag pair.
        a = PlanNode("a", "State0", frozenset({ImplTag(kc.inc_tag(0), 0)}))
        b = PlanNode("b", "State0", frozenset({ImplTag(kc.reset_tag(0), 1)}))
        bad = SyncPlan(PlanNode("r", "State0", frozenset(), (a, b)))
        with pytest.raises(ValidityError):
            FluminaRuntime(prog, bad)


class TestRandomPlansAgainstSpec:
    """The headline property: ANY P-valid plan produces the sequential
    spec's output multiset (Theorem 3.5)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_random_plan_random_workload(self, seed):
        rng = random.Random(seed)
        nkeys = rng.choice([1, 2, 3])
        prog = kc.make_program(nkeys)
        itags = []
        for k in range(nkeys):
            for s in range(rng.choice([1, 2])):
                itags.append(ImplTag(kc.inc_tag(k), f"i{k}.{s}"))
            itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
        events = {it: [] for it in itags}
        for t in range(1, 100):
            it = itags[rng.randrange(len(itags))]
            events[it].append(Event(it.tag, it.stream, float(t)))
        streams = [
            InputStream(
                it, tuple(events[it]), heartbeat_interval=rng.choice([1.0, 5.0, 20.0])
            )
            for it in itags
        ]
        plan = random_valid_plan(prog, itags, rng)
        ok, res = outputs_match(prog, plan, streams)
        assert ok, f"plan:\n{plan.pretty()}"


class TestRunMetrics:
    def test_throughput_and_duration(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(2, 30)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        rt = FluminaRuntime(prog, plan)
        res = rt.run(streams)
        assert res.events_in == 2 * 30 + len(streams[-1].events)
        assert res.duration_ms > 30.0
        assert res.throughput_events_per_ms > 0
        assert set(res.host_utilization) == set(rt.topology.hosts)

    def test_network_stats_populated(self):
        prog = kc.make_program(1)
        streams = value_barrier_streams(3, 20)
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        rt = FluminaRuntime(prog, plan)
        res = rt.run(streams)
        assert res.network.total_messages > 0
        assert res.network.remote_bytes > 0

    def test_latency_percentiles_nan_when_no_outputs(self):
        import math

        prog = kc.make_program(1)
        it = ImplTag(kc.inc_tag(0), 0)
        evs = tuple(Event(it.tag, 0, float(t)) for t in range(1, 5))
        plan = sequential_plan(prog, [it])
        res = FluminaRuntime(prog, plan).run([InputStream(it, evs)])
        assert all(math.isnan(p) for p in res.latency_percentiles())


class TestHeartbeatSensitivity:
    def test_sparse_heartbeats_increase_latency(self):
        # Latency sensitivity appears when value events are *sparser*
        # than heartbeats: the barrier join must wait for proof that no
        # value <= barrier_ts remains, which only heartbeats provide in
        # the gaps (Appendix D.1 / Figure 10b).
        prog = kc.make_program(1)
        results = {}
        for hb in (0.5, 20.0):
            streams = []
            for s in range(3):
                it = ImplTag(kc.inc_tag(0), f"v{s}")
                evs = tuple(
                    Event(it.tag, it.stream, t * 7.0 + s * 0.13 + 0.01)
                    for t in range(1, 15)
                )
                streams.append(InputStream(it, evs, heartbeat_interval=hb))
            rit = ImplTag(kc.reset_tag(0), "b")
            resets = tuple(Event(rit.tag, rit.stream, t * 10.0) for t in range(1, 9))
            streams.append(InputStream(rit, resets, heartbeat_interval=hb))
            leaf = [[s.itag] for s in streams[:-1]]
            plan = root_and_leaves_plan(prog, [rit], leaf)
            res = FluminaRuntime(prog, plan).run(streams)
            results[hb] = res.latency_percentiles([50])[0]
        assert results[20.0] > results[0.5]

    def test_no_periodic_heartbeats_still_drains(self):
        prog = kc.make_program(1)
        streams = [
            InputStream(s.itag, s.events, heartbeat_interval=None)
            for s in value_barrier_streams(2, 20)
        ]
        leaf = [[s.itag] for s in streams[:-1]]
        plan = root_and_leaves_plan(prog, [streams[-1].itag], leaf)
        ok, _ = outputs_match(prog, plan, streams)
        assert ok
