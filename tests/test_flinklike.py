"""Tests for the Flink-like engine and its application implementations
(§4.2-4.3): output correctness vs the sequential spec, sharding
semantics, watermark merging, and the manual fork/join service."""

from collections import Counter

import pytest

from repro.apps import fraud, pageview as pv, value_barrier as vb
from repro.flinklike import (
    FlinkJob,
    JobGraph,
    OperatorInstance,
    Rec,
    TimestampMerger,
    build_event_window_job,
    build_fraud_job,
    build_fraud_splan_job,
    build_pageview_job,
    build_pageview_splan_job,
)
from repro.runtime import run_sequential_reference


def _spec(mod, wl):
    prog = mod.make_program() if mod is not pv else mod.make_program(2)
    streams = mod.make_streams(wl)
    return Counter(map(repr, run_sequential_reference(prog, streams)))


class TestTimestampMerger:
    def test_releases_in_global_order(self):
        m = TimestampMerger([0, 1])
        assert m.add(0, Rec(5.0, "a")) == []
        out = m.add(1, Rec(7.0, "b"))
        assert [r.value for r in out] == ["a"]
        out = m.watermark(0, 10.0)
        assert [r.value for r in out] == ["b"]

    def test_interleaves_across_channels(self):
        m = TimestampMerger([0, 1])
        out = []
        out += m.add(0, Rec(1.0, "a1"))
        out += m.add(0, Rec(3.0, "a3"))
        out += m.add(1, Rec(2.0, "b2"))  # low=2.0: releases a1, b2
        out += m.watermark(1, 5.0)  # low=3.0: releases a3
        assert [r.value for r in out] == ["a1", "b2", "a3"]

    def test_channel_order_breaks_timestamp_ties(self):
        m = TimestampMerger([0, 1])
        out = []
        out += m.add(1, Rec(1.0, "b"))
        out += m.add(0, Rec(1.0, "a"))  # low=1.0: both release, ch 0 first
        assert [r.value for r in out] == ["a", "b"]

    def test_last_released_channels(self):
        m = TimestampMerger([0, 1])
        m.add(0, Rec(1.0, "a"))
        m.watermark(1, 2.0)
        assert m.last_released_channels == [0]


class TestEngineBasics:
    def test_forward_requires_equal_parallelism(self):
        g = JobGraph("t")
        a = g.add("a", 2, lambda i: OperatorInstance())
        b = g.add("b", 3, lambda i: OperatorInstance())
        from repro.core import RuntimeFault

        with pytest.raises(RuntimeFault):
            g.connect(a, b, mode="forward")

    def test_hash_requires_key_fn(self):
        g = JobGraph("t")
        a = g.add("a", 1, lambda i: OperatorInstance())
        b = g.add("b", 2, lambda i: OperatorInstance())
        from repro.core import RuntimeFault

        with pytest.raises(RuntimeFault):
            g.connect(a, b, mode="hash")

    def test_duplicate_operator_rejected(self):
        g = JobGraph("t")
        g.add("a", 1, lambda i: OperatorInstance())
        from repro.core import RuntimeFault

        with pytest.raises(RuntimeFault):
            g.add("a", 1, lambda i: OperatorInstance())

    def test_hash_routes_by_key(self):
        received = []

        class Source(OperatorInstance):
            def process(self, rec, input_id, channel):
                self.emit(rec)

        class Sink(OperatorInstance):
            def process(self, rec, input_id, channel):
                received.append((self.index, rec.value))

        g = JobGraph("t")
        src = g.add("src", 1, lambda i: Source())
        snk = g.add("snk", 4, lambda i: Sink())
        g.connect(src, snk, mode="hash", key_fn=lambda v: v)
        job = FlinkJob(g, n_hosts=2)
        job.feed("src", [[Rec(float(t + 1), t % 8) for t in range(16)]])
        job.run()
        for idx, val in received:
            assert idx == val % 4

    def test_broadcast_reaches_all_instances(self):
        received = []

        class Source(OperatorInstance):
            def process(self, rec, input_id, channel):
                self.emit(rec)

        class Sink(OperatorInstance):
            def process(self, rec, input_id, channel):
                received.append(self.index)

        g = JobGraph("t")
        src = g.add("src", 1, lambda i: Source())
        snk = g.add("snk", 3, lambda i: Sink())
        g.connect(src, snk, mode="broadcast")
        job = FlinkJob(g, n_hosts=2)
        job.feed("src", [[Rec(1.0, "x")]])
        job.run()
        assert sorted(received) == [0, 1, 2]


class TestEventWindowJobs:
    @pytest.mark.parametrize("mode", ["parallel", "sequential"])
    def test_matches_spec(self, mode):
        wl = vb.make_workload(n_value_streams=4, values_per_barrier=40, n_barriers=4)
        want = _spec(vb, wl)
        res = build_event_window_job(wl, parallelism=4, mode=mode).run()
        assert Counter(map(repr, res.output_values())) == want

    def test_parallelism_mismatch_rejected(self):
        wl = vb.make_workload(n_value_streams=2, values_per_barrier=10, n_barriers=2)
        with pytest.raises(ValueError):
            build_event_window_job(wl, parallelism=3)


class TestPageViewJobs:
    def test_keyed_matches_spec(self):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=4, views_per_update=40, n_updates_per_page=4
        )
        want = _spec(pv, wl)
        res = build_pageview_job(wl, parallelism=4).run()
        assert Counter(map(repr, res.output_values())) == want

    def test_splan_matches_spec(self):
        wl = pv.make_workload(
            n_pages=2, n_view_streams=4, views_per_update=40, n_updates_per_page=4
        )
        want = _spec(pv, wl)
        res = build_pageview_splan_job(wl).run()
        assert Counter(map(repr, res.output_values())) == want

    def test_splan_handles_childless_page(self):
        # parallelism 1 -> page 1 has updates but no view shard.
        wl = pv.make_workload(
            n_pages=2, n_view_streams=1, views_per_update=20, n_updates_per_page=3
        )
        want = _spec(pv, wl)
        res = build_pageview_splan_job(wl).run()
        assert Counter(map(repr, res.output_values())) == want


class TestFraudJobs:
    def test_sequential_matches_spec(self):
        wl = fraud.make_workload(n_txn_streams=4, txns_per_rule=40, n_rules=4)
        want = _spec(fraud, wl)
        res = build_fraud_job(wl, parallelism=4).run()
        assert Counter(map(repr, res.output_values())) == want

    def test_splan_matches_spec(self):
        wl = fraud.make_workload(n_txn_streams=4, txns_per_rule=40, n_rules=4)
        want = _spec(fraud, wl)
        res = build_fraud_splan_job(wl, parallelism=4).run()
        assert Counter(map(repr, res.output_values())) == want

    def test_splan_scales_where_sequential_cannot(self):
        # At a saturating rate the manual plan clearly beats sequential.
        wl = fraud.make_workload(
            n_txn_streams=8, txns_per_rule=300, n_rules=3, txn_rate_per_ms=400.0
        )
        seq = build_fraud_job(wl, parallelism=8).run()
        man = build_fraud_splan_job(wl, parallelism=8).run()
        assert man.throughput_events_per_ms > 1.5 * seq.throughput_events_per_ms

    def test_result_metrics(self):
        wl = fraud.make_workload(n_txn_streams=2, txns_per_rule=20, n_rules=2)
        res = build_fraud_job(wl, parallelism=2).run()
        assert res.events_in == wl.total_events
        assert res.records_processed > 0
        assert res.input_span_ms > 0
        assert len(res.latency_percentiles()) == 3
