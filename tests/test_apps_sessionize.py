"""Spec-level tests for the sessionize app family: the sequential
update's session algebra (close-exactly-once, the strict timeout
boundary, empty and single-event sessions), the fork/join pair, the
seeded workload's invariants, and the re-shardable rooted plan hooks
in repro.plans.generation."""

import pytest

from repro.apps import sessionize as sz
from repro.core import Event
from repro.core.errors import PlanError
from repro.core.events import ImplTag
from repro.data.adversarial import assert_collision_free
from repro.plans import (
    assert_p_valid,
    max_width,
    plan_width,
    rooted_shards_plan,
    sharded_groups,
)
from repro.runtime.runtime import run_sequential_reference


def _act(key, ts):
    return Event(sz.act_tag(key), f"a{key}", ts, None)


def _flush(ts):
    return Event(sz.FLUSH_TAG, "f", ts)


def _run(events, timeout_ms):
    """Feed events (assumed timestamp-ordered) through the sequential
    update; returns (final_state, outputs)."""
    update = sz.make_update(timeout_ms)
    state, outs = {}, []
    for e in events:
        state, new = update(state, e)
        outs.extend(new)
    return state, outs


class TestSequentialSpec:
    def test_gap_splits_sessions_and_closes_exactly_once(self):
        state, outs = _run(
            [_act(0, 1.0), _act(0, 2.0), _act(0, 10.0), _flush(30.0)],
            timeout_ms=5.0,
        )
        # The first session [1, 2] closed lazily by the 10.0 activity;
        # the second [10] closed by the flush.  Nothing closed twice.
        assert outs == [
            ("session", 0, 1.0, 2.0, 2),
            ("session", 0, 10.0, 10.0, 1),
        ]
        assert state == {}

    def test_boundary_gap_exactly_timeout_stays_open(self):
        # gap == timeout extends the session on both paths: the
        # activity path (5.0 -> 10.0 with timeout 5) and the flush path
        # (flush at last + timeout does not expire it).
        state, outs = _run(
            [_act(0, 5.0), _act(0, 10.0), _flush(15.0)], timeout_ms=5.0
        )
        assert outs == []
        assert state == {0: (5.0, 10.0, 2)}
        # One quantum past the boundary, it closes.
        state, outs = _run(
            [_act(0, 5.0), _act(0, 10.0), _flush(15.1)], timeout_ms=5.0
        )
        assert outs == [("session", 0, 5.0, 10.0, 2)]
        assert state == {}

    def test_flush_with_no_sessions_is_a_no_op(self):
        state, outs = _run([_flush(1.0), _flush(2.0)], timeout_ms=5.0)
        assert state == {} and outs == []

    def test_single_event_sessions(self):
        state, outs = _run(
            [_act(0, 1.0), _act(0, 20.0), _act(0, 40.0), _flush(60.0)],
            timeout_ms=5.0,
        )
        assert outs == [
            ("session", 0, 1.0, 1.0, 1),
            ("session", 0, 20.0, 20.0, 1),
            ("session", 0, 40.0, 40.0, 1),
        ]
        assert state == {}

    def test_open_sessions_are_never_emitted_without_a_flush(self):
        state, outs = _run([_act(0, 1.0), _act(1, 2.0)], timeout_ms=5.0)
        assert outs == []
        assert state == {0: (1.0, 1.0, 1), 1: (2.0, 2.0, 1)}

    def test_flush_closes_only_expired_keys_deterministically(self):
        state, outs = _run(
            [_act(2, 1.0), _act(0, 1.5), _act(1, 9.0), _flush(10.0)],
            timeout_ms=5.0,
        )
        # Keys 0 and 2 expired (idle > 5), emitted in sorted key order;
        # key 1 is fresh and stays open.
        assert outs == [
            ("session", 0, 1.5, 1.5, 1),
            ("session", 2, 1.0, 1.0, 1),
        ]
        assert state == {1: (9.0, 9.0, 1)}

    def test_update_is_pure(self):
        update = sz.make_update(5.0)
        s0 = {0: (1.0, 1.0, 1)}
        update(s0, _act(0, 2.0))
        update(s0, _flush(30.0))
        assert s0 == {0: (1.0, 1.0, 1)}


class TestForkJoin:
    def test_fork_splits_by_key_ownership_and_join_restores(self):
        prog = sz.make_program(3, timeout_ms=5.0)
        state = {0: (1.0, 1.0, 1), 1: (2.0, 2.0, 1), 2: (3.0, 3.0, 2)}
        pred1 = frozenset({sz.act_tag(0), sz.act_tag(2)})
        pred2 = frozenset({sz.act_tag(1), sz.FLUSH_TAG})
        s1, s2 = sz._fork(state, pred1, pred2)
        assert set(s1) == {0, 2} and set(s2) == {1}
        assert sz.state_eq(sz._join(s1, s2), state)

    def test_program_shape(self):
        prog = sz.make_program(4, timeout_ms=5.0)
        tags = sz.tag_universe(4)
        assert len(tags) == 5
        # Flush synchronizes globally; distinct keys are independent.
        assert sz.depends_fn(sz.FLUSH_TAG, sz.act_tag(2))
        assert sz.depends_fn(sz.act_tag(1), sz.act_tag(1))
        assert not sz.depends_fn(sz.act_tag(1), sz.act_tag(2))
        assert prog.name.startswith("sessionize[")


class TestWorkloadGenerator:
    def test_collision_free_and_monotone(self):
        wl = sz.make_workload(n_keys=4, events_per_key=30, seed=5)
        streams = dict(wl.act_streams)
        streams[wl.flush_itag] = wl.flush_stream
        assert_collision_free(streams)

    def test_drains_completely(self):
        """The closing flush lands past every horizon: the sequential
        spec ends with no open sessions and every activity accounted
        for in exactly one emitted session."""
        wl = sz.make_workload(n_keys=3, events_per_key=25, seed=11)
        prog = sz.make_program(3, timeout_ms=wl.timeout_ms)
        streams = sz.make_streams(wl)
        outs = run_sequential_reference(prog, streams)
        n_acts = sum(len(v) for v in wl.act_streams.values())
        assert sum(o[4] for o in outs) == n_acts
        assert all(o[0] == "session" and o[2] <= o[3] for o in outs)

    def test_boundary_gap_exercised_by_construction(self):
        """Some within-session gap equals the timeout exactly — the
        generator's lattice guarantees the boundary path gets traffic."""
        found = False
        for seed in range(6):
            wl = sz.make_workload(n_keys=4, events_per_key=40, seed=seed)
            for evs in wl.act_streams.values():
                for a, b in zip(evs, evs[1:]):
                    if b.ts - a.ts == pytest.approx(wl.timeout_ms):
                        found = True
        assert found, "no gap ever landed exactly on the timeout"

    def test_seed_determinism_and_skew(self):
        a = sz.make_workload(n_keys=3, events_per_key=20, seed=3)
        b = sz.make_workload(n_keys=3, events_per_key=20, seed=3)
        assert a == b
        skewed = sz.make_workload(
            n_keys=4, events_per_key=20, seed=3, skew_alpha=1.5
        )
        counts = [len(v) for v in skewed.act_streams.values()]
        assert counts[0] > counts[-1] >= 1

    def test_degenerate_parameters_rejected(self):
        with pytest.raises(ValueError, match="key"):
            sz.make_workload(n_keys=0)
        with pytest.raises(ValueError, match="events_per_key"):
            sz.make_workload(events_per_key=0)
        with pytest.raises(ValueError, match="timeout_units"):
            sz.make_workload(timeout_units=1)


class TestReshardablePlans:
    def test_default_plan_is_widest_and_valid(self):
        wl = sz.make_workload(n_keys=4, events_per_key=12, seed=1)
        prog = sz.make_program(4, timeout_ms=wl.timeout_ms)
        plan = sz.make_plan(prog, wl)
        assert_p_valid(plan, prog)
        assert plan_width(plan) == 4
        assert max_width(prog, plan) == 4
        # The flush itag owns the root.
        assert wl.flush_itag in plan.root.itags

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 9])
    def test_every_shard_width_is_valid(self, n_shards):
        wl = sz.make_workload(n_keys=4, events_per_key=12, seed=2)
        prog = sz.make_program(4, timeout_ms=wl.timeout_ms)
        plan = sz.make_plan(prog, wl, n_shards=n_shards)
        assert_p_valid(plan, prog)
        assert plan_width(plan) == min(n_shards, 4)

    def test_sharded_groups_deals_round_robin(self):
        groups = [[ImplTag(("act", k), f"a{k}")] for k in range(5)]
        dealt = sharded_groups(groups, 2)
        assert [len(g) for g in dealt] == [3, 2]
        assert sharded_groups(groups, 99) == [list(g) for g in groups]
        with pytest.raises(PlanError):
            sharded_groups(groups, 0)

    def test_rooted_shards_plan_general_program(self):
        """The hook works for any rooted app, not just sessionize:
        rebuild keycounter's recovery-sound shape through it."""
        from repro.apps import keycounter as kc

        prog = kc.make_program(1)
        incs = [ImplTag(kc.inc_tag(0), f"i{s}") for s in range(4)]
        reset = ImplTag(kc.reset_tag(0), "r")
        plan = rooted_shards_plan(prog, [reset], [[it] for it in incs], n_shards=2)
        assert_p_valid(plan, prog)
        assert plan_width(plan) == 2
        assert reset in plan.root.itags
