"""CI hygiene checks on .github/workflows/ci.yml.

The workflow is configuration the test suite can't execute, but it
*can* hold to structural invariants that have each burned us at least
once in design review: a job without ``timeout-minutes`` burns a
runner for GitHub's 6-hour default when a socket wedges, a missing
concurrency group queues stale pushes behind dead ones, and the
perf-gate lane silently stops being a gate if someone drops the
check step or the artifact upload.  Parsing the committed YAML keeps
those properties reviewable by ``pytest -q`` instead of by waiting
for CI to misbehave.
"""

import os

import pytest

yaml = pytest.importorskip("yaml")

CI_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    ".github",
    "workflows",
    "ci.yml",
)


@pytest.fixture(scope="module")
def workflow():
    with open(CI_PATH) as f:
        return yaml.safe_load(f)


@pytest.fixture(scope="module")
def jobs(workflow):
    return workflow["jobs"]


def steps_text(job):
    """One searchable string of a job's step names + run commands."""
    parts = []
    for step in job.get("steps", ()):
        parts.append(str(step.get("name", "")))
        parts.append(str(step.get("run", "")))
        parts.append(str(step.get("uses", "")))
        parts.append(str(step.get("with", "")))
    return "\n".join(parts)


class TestHygiene:
    def test_every_job_has_a_timeout(self, jobs):
        missing = [name for name, job in jobs.items() if "timeout-minutes" not in job]
        assert missing == [], (
            f"jobs without timeout-minutes (6h GitHub default): {missing}"
        )

    def test_concurrency_cancels_superseded_runs(self, workflow):
        conc = workflow.get("concurrency")
        assert conc, "workflow must define a concurrency group"
        assert conc.get("cancel-in-progress") is True
        assert "github.ref" in conc.get("group", "")

    def test_nightly_schedule_exists(self, workflow):
        # yaml parses the `on:` key as boolean True
        triggers = workflow.get("on") or workflow.get(True)
        assert "schedule" in triggers, "nightly schedule trigger missing"


class TestPerfGateLane:
    def test_lane_runs_all_four_micro_benches(self, jobs):
        text = steps_text(jobs["perf-gate"])
        for bench in (
            "bench_micro_core.py",
            "bench_transport.py",
            "bench_latency_openloop.py",
            "bench_adversarial.py",
        ):
            assert bench in text, f"perf-gate lane no longer runs {bench}"
        assert "--smoke" in text

    def test_lane_gates_and_uploads_records(self, jobs):
        text = steps_text(jobs["perf-gate"])
        assert "perf_gate.py check" in text, "the gate step is the lane's point"
        assert "upload-artifact" in text
        assert "BENCH_*.json" in text
        uploads = [
            s
            for s in jobs["perf-gate"]["steps"]
            if "upload-artifact" in str(s.get("uses", ""))
        ]
        assert any(
            s.get("with", {}).get("if-no-files-found") == "error" for s in uploads
        ), "a silently-empty record upload would make the gate vacuous"

    def test_lane_runs_on_push_and_pr_not_nightly(self, jobs):
        assert "schedule" in jobs["perf-gate"].get("if", ""), (
            "perf-gate must exclude schedule runs (the trend lane owns those)"
        )

    def test_results_cache_is_keyed_by_commit(self, jobs):
        cache_steps = [
            s
            for s in jobs["perf-gate"]["steps"]
            if "actions/cache" in str(s.get("uses", ""))
        ]
        assert cache_steps, "perf-gate lane must cache benchmarks/results/"
        (cache,) = cache_steps
        assert "github.sha" in cache["with"]["key"], (
            "cache must be content-addressed by commit, not by ref"
        )
        assert "benchmarks/results" in cache["with"]["path"]
        # The measuring step must honour the cache (skip on hit)...
        measure = [
            s
            for s in jobs["perf-gate"]["steps"]
            if "bench_transport.py" in str(s.get("run", ""))
        ]
        assert measure and "cache-hit" in measure[0].get("if", "")
        # ...while the gate step runs unconditionally: a baseline change
        # must still gate cached results.
        gate = [
            s
            for s in jobs["perf-gate"]["steps"]
            if "perf_gate.py check" in str(s.get("run", ""))
        ]
        assert gate and "if" not in gate[0]


class TestPerfTrendLane:
    def test_nightly_trend_uploads_ungated_records(self, jobs):
        assert "perf-trend" in jobs, "nightly perf trend lane missing"
        job = jobs["perf-trend"]
        assert "schedule" in job.get("if", "")
        text = steps_text(job)
        assert "bench_transport.py" in text
        assert "upload-artifact" in text and "BENCH_*.json" in text
        # The trend run reports but never blocks the nightly.
        checks = [
            s for s in job["steps"] if "perf_gate.py check" in str(s.get("run", ""))
        ]
        assert checks and "|| true" in checks[0]["run"]
