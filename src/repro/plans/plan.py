"""Synchronization plans (paper Definition 3.1).

A synchronization plan is a binary tree of *workers*.  Each worker has
a state type, a set of implementation tags it is responsible for, and —
if it has children — a fork/join pair.  Leaves process their events
independently; a parent must join its children's states before it can
process one of its own events, and forks the updated state back
afterwards.  Workers without an ancestor/descendant relationship never
communicate directly.

Plans are immutable after construction; :class:`SyncPlan` precomputes
the parent map, ancestor relation, and subtree tag sets that both the
validity checker and the runtime need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..core.errors import PlanError
from ..core.events import ImplTag


@dataclass(frozen=True)
class PlanNode:
    """A worker in a synchronization plan.

    ``host`` is the (simulated) machine the worker runs on; ``None``
    means "let the runtime place it" (it defaults to a round-robin
    assignment).
    """

    id: str
    state_type: str
    itags: FrozenSet[ImplTag]
    children: Tuple["PlanNode", ...] = ()
    host: Optional[str] = None

    def __post_init__(self) -> None:
        if len(self.children) not in (0, 2):
            raise PlanError(
                f"worker {self.id!r} has {len(self.children)} children; "
                "synchronization plans are binary trees"
            )

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def with_host(self, host: str) -> "PlanNode":
        return PlanNode(self.id, self.state_type, self.itags, self.children, host)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        tags = "{" + ", ".join(sorted(f"{t.tag!r}@{t.stream!r}" for t in self.itags)) + "}"
        kind = "leaf" if self.is_leaf else "node"
        return f"PlanNode({self.id}, {kind}, {tags})"


class SyncPlan:
    """An immutable synchronization plan with precomputed relations."""

    def __init__(self, root: PlanNode) -> None:
        self.root = root
        self._nodes: Dict[str, PlanNode] = {}
        self._parent: Dict[str, Optional[str]] = {}
        self._collect(root, None)
        self._ancestors: Dict[str, FrozenSet[str]] = {}
        for node_id in self._nodes:
            chain: List[str] = []
            cur = self._parent[node_id]
            while cur is not None:
                chain.append(cur)
                cur = self._parent[cur]
            self._ancestors[node_id] = frozenset(chain)
        self._subtree_itags: Dict[str, FrozenSet[ImplTag]] = {}
        self._compute_subtree_itags(root)

    def _collect(self, node: PlanNode, parent: Optional[str]) -> None:
        if node.id in self._nodes:
            raise PlanError(f"duplicate worker id {node.id!r}")
        self._nodes[node.id] = node
        self._parent[node.id] = parent
        for child in node.children:
            self._collect(child, node.id)

    def _compute_subtree_itags(self, node: PlanNode) -> FrozenSet[ImplTag]:
        acc = set(node.itags)
        for child in node.children:
            acc |= self._compute_subtree_itags(child)
        result = frozenset(acc)
        self._subtree_itags[node.id] = result
        return result

    # -- structure queries --------------------------------------------------
    def workers(self) -> List[PlanNode]:
        return list(self._nodes.values())

    def node(self, node_id: str) -> PlanNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise PlanError(f"unknown worker {node_id!r}") from None

    def leaves(self) -> List[PlanNode]:
        return [n for n in self._nodes.values() if n.is_leaf]

    def internal(self) -> List[PlanNode]:
        return [n for n in self._nodes.values() if not n.is_leaf]

    def parent_of(self, node_id: str) -> Optional[PlanNode]:
        p = self._parent[node_id]
        return self._nodes[p] if p is not None else None

    def ancestors_of(self, node_id: str) -> FrozenSet[str]:
        return self._ancestors[node_id]

    def related(self, a: str, b: str) -> bool:
        """True iff one of a, b is an ancestor of the other (or equal)."""
        return a == b or a in self._ancestors[b] or b in self._ancestors[a]

    def descendants_of(self, node_id: str) -> List[PlanNode]:
        out: List[PlanNode] = []

        def rec(n: PlanNode) -> None:
            for c in n.children:
                out.append(c)
                rec(c)

        rec(self.node(node_id))
        return out

    def subtree_itags(self, node_id: str) -> FrozenSet[ImplTag]:
        """All implementation tags handled in the subtree rooted here
        (the node's own plus all descendants')."""
        return self._subtree_itags[node_id]

    def all_itags(self) -> FrozenSet[ImplTag]:
        return self._subtree_itags[self.root.id]

    def owner_of(self, itag: ImplTag) -> PlanNode:
        """The unique worker responsible for an implementation tag."""
        owners = [n for n in self._nodes.values() if itag in n.itags]
        if not owners:
            raise PlanError(f"no worker responsible for {itag!r}")
        if len(owners) > 1:
            raise PlanError(
                f"multiple workers responsible for {itag!r}: "
                f"{[n.id for n in owners]}"
            )
        return owners[0]

    def depth(self) -> int:
        def rec(n: PlanNode) -> int:
            if n.is_leaf:
                return 1
            return 1 + max(rec(c) for c in n.children)

        return rec(self.root)

    def size(self) -> int:
        return len(self._nodes)

    def iter_topdown(self) -> Iterator[PlanNode]:
        stack = [self.root]
        while stack:
            n = stack.pop()
            yield n
            stack.extend(reversed(n.children))

    def pretty(self) -> str:
        """ASCII rendering in the style of the paper's Figure 3."""
        lines: List[str] = []

        def rec(n: PlanNode, indent: int) -> None:
            tags = ", ".join(sorted(f"{t.tag!r}@{t.stream!r}" for t in n.itags))
            kind = "update" if n.is_leaf else "update-(fork,join)"
            host = f" on {n.host}" if n.host else ""
            lines.append(f"{'  ' * indent}{n.id} {{{tags}}} {kind}{host}")
            for c in n.children:
                rec(c, indent + 1)

        rec(self.root, 0)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SyncPlan(workers={self.size()}, depth={self.depth()})"
