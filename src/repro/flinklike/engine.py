"""A mini Flink-style sharded dataflow engine on the cluster simulator.

Reproduces the *API shape* the paper evaluates against (§4.2): job
graphs of operators with fixed parallelism, connected by FORWARD /
HASH / BROADCAST / REBALANCE edges; per-record processing; two-input
(connected) operators; no communication between parallel instances of
the same operator (the sharding restriction at the heart of the
paper's argument).

Each operator instance runs as one actor; instance ``i`` of every
operator shares host ``i mod n_hosts`` (Flink slot sharing), so a
parallelism-1 operator is a genuine single-core bottleneck.

Records carry the original event timestamp; sinks record latency as
``emit_time - ts``.  Sources also emit per-channel heartbeats (the
paper's ``ValueOrHeartbeat`` pattern) so that operators which merge
channels by timestamp can make progress on idle channels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.errors import RuntimeFault
from ..sim.actors import Actor, ActorSystem
from ..sim.core import Simulator
from ..sim.network import NetworkStats, Topology
from ..sim.params import DEFAULT_PARAMS, SimParams


@dataclass(frozen=True)
class Rec:
    """A dataflow record: payload plus the originating event time."""

    ts: float
    value: Any


@dataclass(frozen=True)
class Watermark:
    """A per-channel progress marker (heartbeat)."""

    ts: float


@dataclass(frozen=True)
class _Delivery:
    input_id: int
    channel: int  # upstream instance index (unique per edge via offset)
    item: Any  # Rec or Watermark


class OperatorInstance:
    """Base class for user logic; one per (operator, parallel index)."""

    #: Relative CPU cost of processing one record (sources that just
    #: forward data are far cheaper than real operator logic).
    cpu_cost_factor: float = 1.0

    def __init__(self) -> None:
        self.ctx: "_InstanceActor" = None  # type: ignore[assignment]
        self.index: int = -1
        self.parallelism: int = 0

    def open(self) -> None:
        pass

    def process(self, rec: Rec, input_id: int, channel: int) -> None:
        raise NotImplementedError

    def on_watermark(self, ts: float, input_id: int, channel: int) -> None:
        pass

    # -- actions -------------------------------------------------------
    def emit(self, rec: Rec) -> None:
        self.ctx.route(rec)

    def emit_watermark(self, ts: float) -> None:
        self.ctx.route_watermark(ts)

    def output(self, value: Any, ts: float) -> None:
        self.ctx.output(value, ts)

    def block(self) -> None:
        self.ctx.blocked = True

    def unblock(self) -> None:
        self.ctx.unblock()

    def send_service(self, service: str, msg: Any) -> None:
        """Out-of-band message to an auxiliary service actor (the Java
        RMI analog used by the manual synchronization implementations;
        this is exactly the PIP3 violation the paper describes)."""
        self.ctx.send(service, msg)

    def on_service(self, msg: Any, sender: Optional[str]) -> None:
        pass


@dataclass
class Operator:
    name: str
    parallelism: int
    factory: Callable[[int], OperatorInstance]
    edges: List[Tuple["Operator", str, Callable[[Any], int], int]] = field(
        default_factory=list
    )
    # (dst, mode, key_fn, input_id); mode in forward|hash|broadcast|rebalance


class JobGraph:
    """Builder for a dataflow job."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.operators: Dict[str, Operator] = {}

    def add(
        self, name: str, parallelism: int, factory: Callable[[int], OperatorInstance]
    ) -> Operator:
        if name in self.operators:
            raise RuntimeFault(f"duplicate operator {name!r}")
        op = Operator(name, parallelism, factory)
        self.operators[name] = op
        return op

    def connect(
        self,
        src: Operator,
        dst: Operator,
        *,
        mode: str = "forward",
        key_fn: Optional[Callable[[Any], int]] = None,
        input_id: int = 0,
    ) -> None:
        if mode == "hash" and key_fn is None:
            raise RuntimeFault("hash edges need a key_fn")
        if mode == "forward" and src.parallelism != dst.parallelism:
            raise RuntimeFault("forward edges require equal parallelism")
        src.edges.append((dst, mode, key_fn or (lambda v: 0), input_id))


class _InstanceActor(Actor):
    def __init__(
        self,
        name: str,
        host: str,
        op: Operator,
        index: int,
        logic: OperatorInstance,
        job: "FlinkJob",
    ) -> None:
        super().__init__(name, host)
        self.op = op
        self.index = index
        self.logic = logic
        self.job = job
        logic.ctx = self
        logic.index = index
        logic.parallelism = op.parallelism
        self.blocked = False
        self._queue: List[_Delivery] = []
        self._rr = 0  # rebalance round-robin counter
        #: (input_id, channel) pairs this instance will receive on;
        #: filled in by FlinkJob before open() so merging operators can
        #: pre-register every channel (a lazily-discovered channel
        #: would let records pass before its first watermark).
        self.expected_channels: List[Tuple[int, int]] = []

    def service_time(self, msg: Any) -> float:
        if isinstance(msg, _Delivery) and isinstance(msg.item, Watermark):
            return self.system.params.recv_overhead_ms * 0.5
        return self.system.params.cpu_per_event_ms * self.logic.cpu_cost_factor

    def handle(self, msg: Any, sender: Optional[str]) -> None:
        if isinstance(msg, _Delivery):
            if self.blocked:
                self._queue.append(msg)
                return
            self._dispatch(msg)
        else:
            self.logic.on_service(msg, sender)
            self._drain()

    def _dispatch(self, msg: _Delivery) -> None:
        if isinstance(msg.item, Watermark):
            self.logic.on_watermark(msg.item.ts, msg.input_id, msg.channel)
        else:
            self.logic.process(msg.item, msg.input_id, msg.channel)
            self.job.records_processed += 1

    def unblock(self) -> None:
        self.blocked = False
        self._drain()

    def _drain(self) -> None:
        while self._queue and not self.blocked:
            self._dispatch(self._queue.pop(0))

    # -- routing ------------------------------------------------------------
    def route(self, rec: Rec) -> None:
        for dst, mode, key_fn, input_id in self.op.edges:
            if mode == "forward":
                targets = [self.index]
            elif mode == "hash":
                targets = [key_fn(rec.value) % dst.parallelism]
            elif mode == "broadcast":
                targets = list(range(dst.parallelism))
            elif mode == "rebalance":
                targets = [self._rr % dst.parallelism]
                self._rr += 1
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"unknown edge mode {mode!r}")
            for t in targets:
                self.send(
                    self.job.instance_name(dst.name, t),
                    _Delivery(input_id, self._channel_id(), rec),
                )

    def route_watermark(self, ts: float) -> None:
        for dst, mode, _key, input_id in self.op.edges:
            # Watermarks go to every instance that might receive our
            # records (all, for hash/rebalance/broadcast edges).
            if mode == "forward":
                targets = [self.index]
            else:
                targets = list(range(dst.parallelism))
            for t in targets:
                self.send(
                    self.job.instance_name(dst.name, t),
                    _Delivery(input_id, self._channel_id(), Watermark(ts)),
                )

    def _channel_id(self) -> int:
        return self.job.channel_base[self.op.name] + self.index

    def output(self, value: Any, ts: float) -> None:
        self.job.outputs.append((value, self.now, self.now - ts))


@dataclass
class FlinkResult:
    outputs: List[Tuple[Any, float, float]]
    duration_ms: float
    first_input_ms: float
    last_input_ms: float
    events_in: int
    records_processed: int
    network: NetworkStats
    host_utilization: Dict[str, float]

    def latencies(self) -> List[float]:
        return [lat for _, _, lat in self.outputs]

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]:
        lats = self.latencies()
        if not lats:
            return [math.nan for _ in qs]
        return [float(p) for p in np.percentile(lats, qs)]

    def output_values(self) -> List[Any]:
        return [v for v, _, _ in self.outputs]

    @property
    def input_span_ms(self) -> float:
        return max(self.last_input_ms - self.first_input_ms, 1e-9)

    @property
    def throughput_events_per_ms(self) -> float:
        span = self.duration_ms - self.first_input_ms
        return self.events_in / span if span > 0 else 0.0


class FlinkJob:
    """Deploy a JobGraph onto a simulated cluster and run it."""

    def __init__(
        self,
        graph: JobGraph,
        *,
        topology: Optional[Topology] = None,
        n_hosts: int = 4,
        params: SimParams = DEFAULT_PARAMS,
    ) -> None:
        self.graph = graph
        self.topology = topology or Topology.cluster(n_hosts, params=params)
        self.sim = Simulator()
        self.system = ActorSystem(self.sim, self.topology)
        self.outputs: List[Tuple[Any, float, float]] = []
        self.records_processed = 0
        self.services: Dict[str, Actor] = {}
        # Globally unique channel ids per (operator, instance).
        self.channel_base: Dict[str, int] = {}
        base = 0
        for op in graph.operators.values():
            self.channel_base[op.name] = base
            base += op.parallelism
        hosts = self.topology.host_names()
        self._actors: Dict[str, _InstanceActor] = {}
        for op in graph.operators.values():
            for i in range(op.parallelism):
                actor = _InstanceActor(
                    self.instance_name(op.name, i),
                    hosts[i % len(hosts)],
                    op,
                    i,
                    op.factory(i),
                    self,
                )
                self.system.add(actor)
                self._actors[actor.name] = actor
        self._fed_channels: Dict[str, List[Tuple[int, int]]] = {}
        self._opened = False

    @staticmethod
    def instance_name(op_name: str, index: int) -> str:
        return f"{op_name}[{index}]"

    def add_service(self, actor: Actor) -> None:
        self.system.add(actor)
        self.services[actor.name] = actor

    # -- input ----------------------------------------------------------------
    def feed(
        self,
        op_name: str,
        per_instance: Sequence[Sequence[Rec]],
        *,
        heartbeat_interval: Optional[float] = 1.0,
        source_hosts: Optional[Sequence[str]] = None,
    ) -> int:
        """Inject records into the instances of a (source) operator.

        Each instance's list must be time-ordered.  Watermarks are
        injected between records at ``heartbeat_interval`` plus one
        closing watermark at the end of the whole job's input.
        """
        op = self.graph.operators[op_name]
        if len(per_instance) != op.parallelism:
            raise RuntimeFault(
                f"{op_name}: got {len(per_instance)} source lists for "
                f"parallelism {op.parallelism}"
            )
        n = 0
        self._events_in = getattr(self, "_events_in", 0)
        end_ts = max(
            (recs[-1].ts for recs in per_instance if recs), default=0.0
        )
        self._end_ts = max(getattr(self, "_end_ts", 0.0), end_ts + 1.0)
        for i, recs in enumerate(per_instance):
            dst = self.instance_name(op_name, i)
            src_host = source_hosts[i] if source_hosts else None
            for r in recs:
                self.system.inject(
                    dst,
                    _Delivery(0, -1 - i, r),
                    at=r.ts,
                    from_host=src_host,
                )
                n += 1
            # Periodic + closing watermarks for this source channel.
            times: List[float] = []
            if heartbeat_interval:
                t = heartbeat_interval
                while t < self._end_ts:
                    times.append(t)
                    t += heartbeat_interval
            self._pending_wm = getattr(self, "_pending_wm", [])
            self._pending_wm.append((dst, i, times, src_host))
            self._fed_channels.setdefault(op_name, []).append((i, -1 - i))
        self._events_in += n
        return n

    def _compute_expected_channels(self) -> None:
        """Wire up each instance's (input_id, channel) list from graph
        edges plus the externally fed source channels, then open()."""
        for src in self.graph.operators.values():
            for dst, mode, _key, input_id in src.edges:
                for j in range(src.parallelism):
                    ch = self.channel_base[src.name] + j
                    if mode == "forward":
                        targets = [j]
                    else:
                        targets = range(dst.parallelism)
                    for t in targets:
                        self._actors[
                            self.instance_name(dst.name, t)
                        ].expected_channels.append((input_id, ch))
        for op_name, pairs in self._fed_channels.items():
            for instance_index, channel in pairs:
                self._actors[
                    self.instance_name(op_name, instance_index)
                ].expected_channels.append((0, channel))
        for actor in self._actors.values():
            actor.logic.open()
        self._opened = True

    def run(self, *, max_sim_events: int = 50_000_000) -> FlinkResult:
        if not self._opened:
            self._compute_expected_channels()
        # Inject watermarks (incl. closing ones) now that the global
        # end time is known.
        end = getattr(self, "_end_ts", 1.0)
        for dst, i, times, src_host in getattr(self, "_pending_wm", []):
            for t in times + [end]:
                self.system.inject(
                    dst, _Delivery(0, -1 - i, Watermark(t)), at=t, from_host=src_host
                )
        self.sim.run(max_events=max_sim_events)
        duration = max(self.sim.now, self.system.last_completion)
        util = {
            name: host.utilization(duration) if duration > 0 else 0.0
            for name, host in self.topology.hosts.items()
        }
        return FlinkResult(
            outputs=list(self.outputs),
            duration_ms=duration,
            first_input_ms=0.0,
            last_input_ms=max(getattr(self, "_end_ts", 1.0) - 1.0, 1e-9),
            events_in=getattr(self, "_events_in", 0),
            records_processed=self.records_processed,
            network=self.topology.stats,
            host_utilization=util,
        )


class TimestampMerger:
    """The paper's ``makeProgress`` pattern (Appendix G): buffer records
    from several channels and release them in global timestamp order,
    gated by per-channel watermarks."""

    def __init__(self, channels: Sequence[int]) -> None:
        self._buf: Dict[int, List[Rec]] = {c: [] for c in channels}
        self._wm: Dict[int, float] = {c: float("-inf") for c in channels}
        #: channels of the records returned by the last add/watermark
        #: call, in release order (consumed by _MergingInstance).
        self.last_released_channels: List[int] = []

    def add(self, channel: int, rec: Rec) -> List[Rec]:
        if channel not in self._buf:
            self._buf[channel] = []
            self._wm[channel] = float("-inf")
        self._buf[channel].append(rec)
        self._wm[channel] = max(self._wm[channel], rec.ts)
        return self._release()

    def watermark(self, channel: int, ts: float) -> List[Rec]:
        if channel not in self._wm:
            self._buf[channel] = []
            self._wm[channel] = float("-inf")
        self._wm[channel] = max(self._wm[channel], ts)
        return self._release()

    def _release(self) -> List[Rec]:
        low = min(self._wm.values())
        ready: List[Tuple[float, int, Rec]] = []
        for c, buf in self._buf.items():
            while buf and buf[0].ts <= low:
                ready.append((buf[0].ts, c, buf.pop(0)))
        ready.sort(key=lambda x: (x[0], x[1]))
        self.last_released_channels = [c for _, c, _ in ready]
        return [r for _, _, r in ready]
