"""Synchronization plans: structure, P-validity, generation, and the
communication-minimizing optimizer (paper §3.2-§3.3, Appendix B)."""

from .cost import CostEstimate, compare_plans, estimate_cost
from .generation import (
    assign_hosts_round_robin,
    chain_plan,
    forest_plan,
    map_hosts,
    random_valid_plan,
    root_and_leaves_plan,
    sequential_plan,
)
from .optimizer import StreamInfo, optimize
from .plan import PlanNode, SyncPlan
from .validity import (
    ValidityViolation,
    assert_p_valid,
    is_p_valid,
    validity_violations,
)

__all__ = [
    "CostEstimate",
    "PlanNode",
    "StreamInfo",
    "SyncPlan",
    "ValidityViolation",
    "assert_p_valid",
    "assign_hosts_round_robin",
    "chain_plan",
    "compare_plans",
    "estimate_cost",
    "forest_plan",
    "is_p_valid",
    "map_hosts",
    "optimize",
    "random_valid_plan",
    "root_and_leaves_plan",
    "sequential_plan",
    "validity_violations",
]
