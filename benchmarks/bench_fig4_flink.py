"""Figure 4 (top): Flink max throughput vs parallelism, three apps.

Paper shape: Event Windowing scales (~10x at 12 nodes, broadcast
barriers); Page-View saturates around the hot-key capacity (~2x); Fraud
Detection stays near 1x (sequential — sharding cannot express the
cross-instance model update).
"""

from conftest import parallelism_levels

from repro.bench import experiments as ex
from repro.bench import bench_record, publish, publish_json, render_table
from repro.bench.harness import speedup


def test_fig4_flink(benchmark):
    data = benchmark.pedantic(
        lambda: ex.figure4_flink(parallelism_levels()), rounds=1, iterations=1
    )
    xs = [pt.parallelism for pt in next(iter(data.values()))]
    series = {
        app: [pt.max_throughput_per_ms for pt in pts] for app, pts in data.items()
    }
    text = render_table(
        "Figure 4 (top) - Flink: max throughput (events/ms) vs parallelism",
        "parallelism",
        xs,
        series,
        note="paper shape: Event Win. ~10x @12; Page View saturates ~2x; Fraud ~1x",
    )
    publish("fig4_flink", text)
    publish_json(
        "fig4_flink",
        bench_record(
            "fig4_flink",
            config={"parallelism": list(xs)},
            metrics={
                app: {str(pt.parallelism): pt.max_throughput_per_ms for pt in pts}
                for app, pts in data.items()
            },
        ),
    )

    sp = {app: dict(speedup(pts)) for app, pts in data.items()}
    # Event windowing scales near-linearly.
    assert sp["Event Win."][12] > 6.0
    # Fraud detection is stuck at the sequential bottleneck.
    assert sp["Fraud Dec."][12] < 2.5
    # Page-view saturates: going 4 -> max parallelism gains little.
    pv = {pt.parallelism: pt.max_throughput_per_ms for pt in data["Page View"]}
    assert pv[max(xs)] < 2.0 * pv[4]
    # Ordering at 12 nodes: EW >> PV > FD.
    ew12 = dict((pt.parallelism, pt.max_throughput_per_ms) for pt in data["Event Win."])[12]
    assert ew12 > pv[12] > 0
