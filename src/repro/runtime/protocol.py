"""Substrate-independent synchronization-plan protocol (paper §3.4).

The join/fork worker state machine — selective-reordering mailbox,
join-request fan-out, fork-state fan-in, heartbeat relay — is the same
whether workers are simulated actors, OS threads, or OS processes.
This module holds the protocol once so every concrete runtime is just
transport plumbing around :class:`WorkerCore`:

* :mod:`repro.runtime.threaded` — one ``threading.Thread`` per worker,
  in-memory FIFO queues;
* :mod:`repro.runtime.process` — one OS process per worker, batched
  ``multiprocessing`` queues (escaping the GIL for real parallelism).

(The simulated runtime's :class:`~repro.runtime.worker.WorkerActor`
predates this module and additionally models network cost, state sizes
and checkpoints; it intentionally keeps its own copy of the state
machine so simulation instrumentation does not leak in here.)

A ``WorkerCore`` is driven by ``handle(msg)`` calls and talks to the
outside world through two injected callables:

* ``post(dst, msg)`` — send a protocol message to another worker;
* ``sink`` — an :class:`OutputSink` receiving outputs and counters.

Both must be safe to call from the substrate's execution context (the
threaded runtime passes a locking sink; each process-runtime worker
owns a private one).
"""

from __future__ import annotations

from collections import Counter
from time import monotonic as _mono
from time import perf_counter as _perf
from time import time as _wall
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, Heartbeat, ImplTag
from ..core.program import DGSProgram
from ..plans.plan import PlanNode, SyncPlan
from .checkpoint import Checkpoint, CheckpointPredicate
from .faults import WorkerFaultView
from .mailbox import Buffered, Mailbox
from .messages import (
    EventMsg,
    EventRun,
    ForkStateMsg,
    HeartbeatMsg,
    JoinRequest,
    JoinResponse,
)

PostFn = Callable[[str, Any], None]

#: Sentinel for "start from the program's init()"; a real initial state
#: (a restored checkpoint) may legitimately be None-like, so restarts
#: cannot overload None.
INIT_STATE = object()


class RunStatsMixin:
    """Derived statistics shared by every substrate's result type
    (expects ``outputs``, ``events_in`` and ``wall_s`` attributes).

    Output multisets are the cross-backend equivalence currency
    (Theorem 2.4: determinism up to output reordering), so the
    normalization must be identical everywhere — keep it here only.
    """

    def output_multiset(self) -> Counter:
        return Counter(map(repr, self.outputs))

    @property
    def throughput_events_per_s(self) -> float:
        return self.events_in / self.wall_s if self.wall_s > 0 else 0.0


class OutputSink:
    """Collects one execution's outputs and protocol counters.

    The base class is a plain in-memory accumulator; substrates that
    share a sink across concurrent workers wrap it with their own
    synchronization.

    With ``record_keys=True`` every output is additionally logged as a
    ``(order_key, value)`` pair and root-join checkpoints are kept.
    The fault-recovery driver needs both: after a crash it commits
    exactly the outputs at or below the restored checkpoint's key and
    replays the rest (exactly-once output delivery, with the in-memory
    log standing in for a durable one).
    """

    __slots__ = (
        "outputs",
        "keyed_outputs",
        "checkpoints",
        "events_processed",
        "joins",
        "record_keys",
    )

    def __init__(self, record_keys: bool = False) -> None:
        self.outputs: List[Any] = []
        self.keyed_outputs: List[Tuple[tuple, Any]] = []
        self.checkpoints: List[Checkpoint] = []
        self.events_processed = 0
        self.joins = 0
        self.record_keys = record_keys

    def emit(self, outs: Sequence[Any], key: Optional[tuple] = None) -> None:
        if outs:
            self.outputs.extend(outs)
            if self.record_keys:
                self.keyed_outputs.extend((key, o) for o in outs)

    def checkpoint(self, ckpt: Checkpoint) -> None:
        self.checkpoints.append(ckpt)

    def count_event(self) -> None:
        self.events_processed += 1

    def count_events(self, n: int) -> None:
        """Batch counter for the vectorized run path."""
        self.events_processed += n

    def count_join(self) -> None:
        self.joins += 1


class WorkerCore:
    """One plan worker's protocol state machine, substrate-free.

    Mirrors the simulated :class:`WorkerActor` protocol: events and
    join requests pass through the selective-reordering mailbox; a
    synchronizing event at an internal node triggers a join request to
    both children, the joined state is updated and forked back down;
    leaves answer join requests by surrendering their state and block
    until the fork returns it.
    """

    def __init__(
        self,
        node: PlanNode,
        plan: SyncPlan,
        program: DGSProgram,
        post: PostFn,
        sink: OutputSink,
        *,
        checkpoint_predicate: Optional[CheckpointPredicate] = None,
        faults: Optional[WorkerFaultView] = None,
        reconfig: Optional[Any] = None,
        flush_hint: Optional[Callable[[], None]] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.node = node
        self.plan = plan
        self.program = program
        self.post = post
        self.sink = sink
        self.checkpoint_predicate = checkpoint_predicate
        self.faults = faults
        #: Called after posting join-critical messages (join requests,
        #: join responses, forked states).  Substrates with batched
        #: channels pass their flush here so synchronization traffic
        #: never waits out a batch window — joins block the whole
        #: subtree, so their latency is the protocol's critical path.
        #: Substrates with unbatched channels leave it None.
        self.flush_hint = flush_hint
        #: A RootReconfigView (repro.runtime.quiesce) when this worker
        #: is the root of an elastically-reconfigurable run; its
        #: maybe_quiesce hook may raise QuiesceSignal at a root join.
        self.reconfig = reconfig
        #: A WorkerMetrics (repro.runtime.metrics) when the metrics
        #: plane is on, else None.  Every hot-path hook below guards on
        #: it, so the disabled cost is one ``is None`` check.
        self.metrics = metrics
        self._join_t0 = 0.0

        ancestors = plan.ancestors_of(node.id)
        known = set(node.itags)
        for anc in ancestors:
            known |= plan.node(anc).itags
        self.mailbox = Mailbox(known, program.depends)
        self.is_leaf = node.is_leaf
        st = program.state_type(node.state_type)
        self.update = st.update
        self.update_batch = getattr(st, "update_batch", None)
        if not self.is_leaf:
            left, right = node.children
            self.join_fn = program.join_for(left.state_type, right.state_type, node.state_type)
            self.fork_fn = program.fork_for(node.state_type, left.state_type, right.state_type)
            tags_l = {t.tag for t in plan.subtree_itags(left.id)}
            tags_r = {t.tag for t in plan.subtree_itags(right.id)}
            self.pred_left = program.true_pred().restrict(tags_l)
            self.pred_right = program.true_pred().restrict(tags_r)
            self.children = (left.id, right.id)
        parent = plan.parent_of(node.id)
        self.parent_id = parent.id if parent else None

        self.state: Any = None
        self.has_state = self.is_leaf
        self._checkpoints_taken = 0
        self.pending: List[Buffered] = []
        self.blocked = False
        self._join_seq = 0
        self._current: Optional[Tuple[Tuple[str, int], Any, Dict[str, Any]]] = None
        self._absorb_restore: Optional[Tuple[str, int]] = None
        self._last_relayed: Dict[ImplTag, Any] = {}
        self._inflight_tags: Dict[ImplTag, int] = {}

    # -- entry point -----------------------------------------------------
    def handle(self, msg: Any) -> None:
        if type(msg) is EventRun:
            self._enqueue(self.mailbox.insert_run(msg))
        elif isinstance(msg, EventMsg):
            self._enqueue(self.mailbox.insert(msg.event.itag, msg.event.order_key, msg))
        elif isinstance(msg, HeartbeatMsg):
            if self.faults is not None and self.faults.should_drop_heartbeat(msg.key):
                return
            self._enqueue(self.mailbox.advance(msg.itag, msg.key))
        elif isinstance(msg, JoinRequest):
            self._enqueue(self.mailbox.insert(msg.itag, msg.key, msg))
        elif isinstance(msg, JoinResponse):
            self._on_join_response(msg)
        elif isinstance(msg, ForkStateMsg):
            self._on_fork_state(msg)
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"unexpected message {msg!r}")
        self._drain()
        self._relay_frontiers()

    def unprocessed(self) -> int:
        """Items still buffered or pending (event-level: a columnar run
        of ``n`` counts ``n``) — must be 0 after a drain."""
        n = self.mailbox.buffered_count()
        for b in self.pending:
            n += len(b.item) if type(b.item) is EventRun else 1
        return n

    # -- protocol --------------------------------------------------------
    def _enqueue(self, released: List[Buffered]) -> None:
        for b in released:
            item = b.item
            n = len(item) if type(item) is EventRun else 1
            self._inflight_tags[b.itag] = self._inflight_tags.get(b.itag, 0) + n
        self.pending.extend(released)

    def _drain(self) -> None:
        if self.metrics is not None:
            self.metrics.note_backlog(len(self.pending))
        while self.pending and not self.blocked:
            buffered = self.pending.pop(0)
            item = buffered.item
            if type(item) is EventRun:
                if self.is_leaf and self.faults is None:
                    self._inflight_tags[buffered.itag] -= len(item)
                    self._process_run(item)
                else:
                    # Fallback boundary: fault hooks need the per-event
                    # crash seam, and internal nodes join per event.
                    # Expand in place; the per-event items below repay
                    # the run's inflight count one by one.
                    self.pending[0:0] = [
                        Buffered(buffered.itag, e.order_key, EventMsg(e))
                        for e in item.events()
                    ]
                continue
            self._inflight_tags[buffered.itag] -= 1
            if isinstance(item, EventMsg):
                self._process_event(item.event)
            else:
                self._process_join_request(item)

    def _process_event(self, event: Event) -> None:
        if self.faults is not None:
            # May raise WorkerCrash (fail-stop at the event boundary:
            # nothing of this event has been applied yet).
            self.faults.note_event(event.ts)
        self.sink.count_event()
        m = self.metrics
        if m is not None:
            m.events_processed += 1
        if self.is_leaf:
            self.state, outs = self.update(self.state, event)
            self.sink.emit(outs, key=event.order_key)
            if m is not None:
                m.observe_event_latency(_wall(), event.ts)
        else:
            self._start_join(("event", event))

    def _process_run(self, run: EventRun) -> None:
        """Vectorized leaf fast path: apply a whole released run in one
        dispatch.  Only reached when the node is a leaf and no fault
        view is armed (see ``_drain``); with an ``update_batch`` on the
        state type the operator sees the packed columns directly,
        otherwise we fold ``update`` over the run without going back
        through the mailbox machinery."""
        sink = self.sink
        n = len(run)
        sink.count_events(n)
        m = self.metrics
        if m is not None:
            m.events_processed += n
        ub = self.update_batch
        if ub is not None:
            self.state, indexed = ub(self.state, run)
            if indexed:
                if sink.record_keys:
                    keys = run.keys()
                    for i, out in indexed:
                        sink.emit((out,), key=keys[i])
                else:
                    sink.emit([out for _, out in indexed])
        else:
            update = self.update
            state = self.state
            if sink.record_keys:
                keys = run.keys()
                for i, e in enumerate(run.events()):
                    state, outs = update(state, e)
                    if outs:
                        sink.emit(outs, key=keys[i])
            else:
                for e in run.events():
                    state, outs = update(state, e)
                    if outs:
                        sink.emit(outs)
            self.state = state
        if m is not None:
            now = _wall()
            for t in run.ts:
                m.observe_event_latency(now, t)

    def _process_join_request(self, req: JoinRequest) -> None:
        if self.is_leaf:
            m = self.metrics
            piggy = m.maybe_wire_snapshot(_mono()) if m is not None else None
            self.post(
                req.reply_to,
                JoinResponse(
                    req.req_id, req.side, self.state, 1.0, self.unprocessed(), piggy
                ),
            )
            self.state = None
            self.has_state = False
            self.blocked = True
            if self.flush_hint is not None:
                self.flush_hint()
        else:
            self._start_join(("parent", req))

    def _start_join(self, ctx: Tuple[str, Any]) -> None:
        self._join_seq += 1
        req_id = (self.node.id, self._join_seq)
        itag = ctx[1].itag
        key = ctx[1].order_key if ctx[0] == "event" else ctx[1].key
        for side, child in zip(("left", "right"), self.children):
            self.post(child, JoinRequest(req_id, itag, key, self.node.id, side))
        self.blocked = True
        self._current = (req_id, ctx, {})
        if self.metrics is not None:
            self._join_t0 = _perf()
        if self.flush_hint is not None:
            self.flush_hint()

    def _on_join_response(self, msg: JoinResponse) -> None:
        assert self._current is not None and self._current[0] == msg.req_id
        req_id, ctx, states = self._current
        states[msg.side] = msg
        if len(states) < 2:
            return
        joined = self.join_fn(states["left"].state, states["right"].state)
        subtree_backlog = states["left"].backlog + states["right"].backlog
        self.sink.count_join()
        self._current = None
        m = self.metrics
        if m is not None:
            m.joins_completed += 1
            m.join_rtt.observe(_perf() - self._join_t0)
            m.note_subtree(states["left"].metrics)
            m.note_subtree(states["right"].metrics)
        if ctx[0] == "event":
            event: Event = ctx[1]
            self.sink.count_event()
            joined, outs = self.update(joined, event)
            self.sink.emit(outs, key=event.order_key)
            if m is not None:
                m.observe_event_latency(_wall(), event.ts)
            if (
                self.parent_id is None
                and self.checkpoint_predicate is not None
                and self.checkpoint_predicate(event, self._checkpoints_taken)
            ):
                # Appendix D.2: the root's joined state *is* a
                # consistent snapshot as of the triggering event.
                self._checkpoints_taken += 1
                self.sink.checkpoint(
                    Checkpoint(event.order_key, event.ts, joined)
                )
            if self.parent_id is None and self.reconfig is not None:
                # Elastic reconfiguration hook: the joined state is a
                # consistent snapshot, and the summed backlogs are the
                # cluster-wide queue depth at this instant.  When the
                # metrics plane is on, also hand over its backlog
                # high-water since the last join — the AutoScaler's
                # watermarks read the windowed peak, not just the
                # instant the join happened to sample.  May raise
                # QuiesceSignal (the substrate stops the attempt and
                # the driver migrates; the fork below never happens).
                self.reconfig.maybe_quiesce(
                    event,
                    subtree_backlog + self.unprocessed(),
                    joined,
                    backlog_hw=m.take_backlog_window() if m is not None else 0,
                )
            self._fork_down(req_id, joined)
            self.blocked = False
        else:
            req: JoinRequest = ctx[1]
            fwd = None
            if m is not None:
                # Relay everything collected from below plus (rate
                # limited) our own snapshot; the root absorbs these
                # into its live per-worker view.
                own = m.maybe_wire_snapshot(_mono())
                acc = tuple(m.subtree.values()) + (own or ())
                if acc:
                    fwd = acc
                    m.subtree.clear()
            self.post(
                req.reply_to,
                JoinResponse(
                    req.req_id,
                    req.side,
                    joined,
                    1.0,
                    subtree_backlog + self.unprocessed(),
                    fwd,
                ),
            )
            self._absorb_restore = req_id
            if self.flush_hint is not None:
                self.flush_hint()

    def _on_fork_state(self, msg: ForkStateMsg) -> None:
        if self.is_leaf:
            self.state = msg.state
            self.has_state = True
        else:
            sub = self._absorb_restore
            self._absorb_restore = None
            self._fork_down(sub, msg.state)  # type: ignore[arg-type]
        self.blocked = False

    def _fork_down(self, req_id: Tuple[str, int], state: Any) -> None:
        s_l, s_r = self.fork_fn(state, self.pred_left, self.pred_right)
        for child, s in zip(self.children, (s_l, s_r)):
            self.post(child, ForkStateMsg(req_id, s, 1.0))
        if self.flush_hint is not None:
            self.flush_hint()

    def _relay_frontiers(self) -> None:
        if self.is_leaf:
            return
        for itag in self.mailbox.itags:
            if self._inflight_tags.get(itag, 0) > 0:
                continue
            frontier = self.mailbox.frontier(itag)
            if frontier is None or frontier[0] == float("-inf"):
                continue
            last = self._last_relayed.get(itag)
            if last is not None and last >= frontier:
                continue
            self._last_relayed[itag] = frontier
            for child in self.children:
                self.post(child, HeartbeatMsg(itag, frontier))


# ---------------------------------------------------------------------------
# Shared setup helpers
# ---------------------------------------------------------------------------

def initial_leaf_states(
    plan: SyncPlan, program: DGSProgram, root_state: Any = INIT_STATE
) -> Dict[str, Any]:
    """Fork the root state down the plan tree and return each leaf's
    share.  ``root_state`` defaults to ``init()``; crash recovery
    passes a restored checkpoint state instead (restarting the cluster
    from the snapshot).

    C2-consistency makes the forked distribution equivalent to the
    sequential state; running the forks in the coordinating parent
    means worker substrates only ever receive ready-made states.
    """
    states: Dict[str, Any] = {}

    def rec(node: PlanNode, state: Any) -> None:
        if node.is_leaf:
            states[node.id] = state
            return
        left, right = node.children
        fork = program.fork_for(node.state_type, left.state_type, right.state_type)
        pred_l = program.true_pred().restrict(
            {t.tag for t in plan.subtree_itags(left.id)}
        )
        pred_r = program.true_pred().restrict(
            {t.tag for t in plan.subtree_itags(right.id)}
        )
        s_l, s_r = fork(state, pred_l, pred_r)
        rec(left, s_l)
        rec(right, s_r)

    rec(plan.root, program.init() if root_state is INIT_STATE else root_state)
    return states


def end_timestamp(streams: Sequence[Any]) -> float:
    """Timestamp of the closing heartbeat: one past the last event."""
    last_ts = max((e.ts for s in streams for e in s.events), default=0.0)
    return last_ts + 1.0


def producer_messages(stream: Any, end_ts: float) -> List[Any]:
    """One input stream's wire traffic, in order-key order.

    Interleaves the stream's events with periodic heartbeats plus the
    closing heartbeat at ``end_ts`` that lets every mailbox drain; this
    is the producer behaviour shared by the threaded and process
    runtimes (the simulated runtime injects the same schedule through
    the simulator's clock instead).
    """
    items: List[Tuple[tuple, Any]] = [
        (e.order_key, EventMsg(e)) for e in stream.events
    ]
    hb_times: List[float] = []
    if stream.heartbeat_interval:
        t = stream.heartbeat_interval
        while t < end_ts:
            hb_times.append(t)
            t += stream.heartbeat_interval
    hb_times.append(end_ts)
    event_ts = {e.ts for e in stream.events}
    for t in hb_times:
        if t in event_ts:
            continue
        hb = Heartbeat(stream.itag.tag, stream.itag.stream, t)
        items.append((hb.order_key, HeartbeatMsg(stream.itag, hb.order_key)))
    items.sort(key=lambda kv: kv[0])
    return [msg for _, msg in items]


def paced_producer_schedule(
    streams: Sequence[Any],
    owner_of: Callable[[Any], str],
    end_ts: float,
) -> List[Tuple[float, str, Any]]:
    """Merge every stream's producer traffic into one open-loop
    schedule of ``(ts, owner_id, msg)`` triples.

    The sort is stable on ``(ts, stream_index, seq)``, so per-stream
    FIFO (a mailbox invariant) is preserved while a single paced pump
    thread replays the merged schedule against the wall clock
    (``RunOptions.pace`` timestamp-units per second).
    """
    sched: List[Tuple[float, int, int, str, Any]] = []
    for idx, stream in enumerate(streams):
        owner = owner_of(stream)
        for seq, msg in enumerate(producer_messages(stream, end_ts)):
            ts = msg.event.ts if isinstance(msg, EventMsg) else msg.key[0]
            sched.append((ts, idx, seq, owner, msg))
    sched.sort(key=lambda t: (t[0], t[1], t[2]))
    return [(ts, owner, msg) for ts, _i, _s, owner, msg in sched]


def paced_schedule_anchor(sched: Sequence[Tuple[float, str, Any]]) -> float:
    """The pacing origin for a merged schedule: its first *event*
    timestamp.  A workload whose timestamps start at T >> 0 must not
    stall T/pace seconds before its first event — anchoring here gives
    everything earlier (the periodic heartbeats that pad out the dead
    interval) a negative due time, so the pump releases it immediately
    and starts pacing at the first event."""
    for ts, _owner, msg in sched:
        if isinstance(msg, EventMsg):
            return ts
    return sched[0][0] if sched else 0.0
