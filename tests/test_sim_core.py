"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule_at(3.0, lambda: log.append("c"))
        sim.schedule_at(1.0, lambda: log.append("a"))
        sim.schedule_at(2.0, lambda: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        sim = Simulator()
        log = []
        for name in "abc":
            sim.schedule_at(1.0, lambda n=name: log.append(n))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_relative_schedule(self):
        sim = Simulator()
        times = []
        sim.schedule(5.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [5.0]

    def test_cannot_schedule_in_past(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: sim.schedule_at(5.0, lambda: None))
        with pytest.raises(ValueError):
            sim.run()

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        log = []

        def first():
            log.append(("first", sim.now))
            sim.schedule(2.0, lambda: log.append(("second", sim.now)))

        sim.schedule_at(1.0, first)
        sim.run()
        assert log == [("first", 1.0), ("second", 3.0)]


class TestRunControl:
    def test_run_until(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append(1))
        sim.schedule_at(10.0, lambda: log.append(10))
        sim.run(until=5.0)
        assert log == [1]
        assert sim.pending == 1
        sim.run()
        assert log == [1, 10]

    def test_run_until_advances_clock_when_drained(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events_guard(self):
        sim = Simulator()

        def storm():
            sim.schedule(1.0, storm)

        sim.schedule(0.0, storm)
        sim.run(max_events=50)
        assert sim.events_processed == 50

    def test_step(self):
        sim = Simulator()
        log = []
        sim.schedule_at(1.0, lambda: log.append("x"))
        assert sim.step()
        assert log == ["x"]
        assert not sim.step()

    def test_empty_run(self):
        sim = Simulator()
        assert sim.run() == 0.0

    def test_events_processed_counter(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule_at(float(i), lambda: None)
        sim.run()
        assert sim.events_processed == 5
