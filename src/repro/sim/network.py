"""Hosts, links and network statistics.

Models the paper's experimental platform: a cluster of single-core
hosts connected by a uniform-latency network (AWS instances in one
region).  Each host is a serial CPU resource — work items claim time on
it in FIFO arrival order via ``reserve`` — and the topology accounts
every message and byte sent, split into local vs remote, which the
case-study benchmarks report as "network load" (the NS3 substitute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .params import DEFAULT_PARAMS, SimParams


class Host:
    """A single-core machine: a serial resource with FIFO queueing."""

    __slots__ = ("name", "busy_until", "busy_time")

    def __init__(self, name: str) -> None:
        self.name = name
        self.busy_until: float = 0.0
        self.busy_time: float = 0.0  # total CPU time consumed

    def reserve(self, now: float, duration: float) -> float:
        """Claim ``duration`` of CPU starting no earlier than ``now``;
        returns the completion time."""
        start = self.busy_until if self.busy_until > now else now
        self.busy_until = start + duration
        self.busy_time += duration
        return self.busy_until

    def utilization(self, elapsed: float) -> float:
        return self.busy_time / elapsed if elapsed > 0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Host({self.name!r})"


@dataclass
class NetworkStats:
    """Message/byte accounting, the simulator's NS3 substitute."""

    local_messages: int = 0
    remote_messages: int = 0
    local_bytes: int = 0
    remote_bytes: int = 0

    @property
    def total_messages(self) -> int:
        return self.local_messages + self.remote_messages

    @property
    def total_bytes(self) -> int:
        return self.local_bytes + self.remote_bytes

    def record(self, remote: bool, nbytes: int) -> None:
        if remote:
            self.remote_messages += 1
            self.remote_bytes += nbytes
        else:
            self.local_messages += 1
            self.local_bytes += nbytes


class Topology:
    """A set of hosts plus the link cost model.

    The default is the paper's setting: uniform sub-millisecond latency
    between distinct hosts, near-zero latency within a host.  Per-pair
    latency overrides support heterogeneous topologies (used by the
    edge-processing case study).
    """

    def __init__(
        self,
        hosts: Iterable[str],
        *,
        params: SimParams = DEFAULT_PARAMS,
        pair_latency: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> None:
        self.params = params
        self.hosts: Dict[str, Host] = {name: Host(name) for name in hosts}
        if not self.hosts:
            raise ValueError("a topology needs at least one host")
        self._pair_latency = dict(pair_latency or {})
        self.stats = NetworkStats()

    @classmethod
    def cluster(cls, n: int, *, params: SimParams = DEFAULT_PARAMS) -> "Topology":
        """A uniform cluster of ``n`` hosts named node0..node{n-1}."""
        return cls([f"node{i}" for i in range(n)], params=params)

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def host_names(self) -> List[str]:
        return list(self.hosts)

    def latency(self, src: str, dst: str) -> float:
        if src == dst:
            return self.params.local_latency_ms
        key = (src, dst)
        if key in self._pair_latency:
            return self._pair_latency[key]
        key = (dst, src)
        if key in self._pair_latency:
            return self._pair_latency[key]
        return self.params.remote_latency_ms

    def set_latency(self, a: str, b: str, latency_ms: float) -> None:
        self._pair_latency[(a, b)] = latency_ms

    def record_message(self, src: str, dst: str, nbytes: int) -> None:
        self.stats.record(remote=src != dst, nbytes=nbytes)

    def reset_stats(self) -> None:
        self.stats = NetworkStats()
        for h in self.hosts.values():
            h.busy_until = 0.0
            h.busy_time = 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({len(self.hosts)} hosts)"
