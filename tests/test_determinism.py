"""Determinism of the simulator and runtime: identical inputs must give
bit-identical results (the property that makes every benchmark in this
repository reproducible)."""

import random

from repro.apps import value_barrier as vb
from repro.bench import experiments as ex
from repro.runtime import FluminaRuntime
from repro.sim import Simulator, Topology


def _run_once():
    prog = vb.make_program()
    wl = vb.make_workload(n_value_streams=3, values_per_barrier=40, n_barriers=3)
    plan = vb.make_plan(prog, wl)
    topo = Topology.cluster(3)
    rt = FluminaRuntime(prog, plan, topology=topo)
    return rt.run(vb.make_streams(wl))


class TestSimulatorDeterminism:
    def test_kernel_tiebreak_stable_across_runs(self):
        logs = []
        for _ in range(2):
            sim = Simulator()
            log = []
            rng = random.Random(42)
            for i in range(200):
                sim.schedule_at(rng.choice([1.0, 2.0, 3.0]), lambda i=i: log.append(i))
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]

    def test_runtime_bitwise_reproducible(self):
        r1 = _run_once()
        r2 = _run_once()
        assert r1.outputs == r2.outputs
        assert r1.duration_ms == r2.duration_ms
        assert r1.joins == r2.joins
        assert r1.network.remote_messages == r2.network.remote_messages

    def test_flink_engine_reproducible(self):
        a = ex.flink_event_window(3)(50.0)
        b = ex.flink_event_window(3)(50.0)
        assert a.outputs == b.outputs
        assert a.duration_ms == b.duration_ms

    def test_timely_engine_reproducible(self):
        a = ex.timely_event_window(3)(50.0)
        b = ex.timely_event_window(3)(50.0)
        assert a.outputs == b.outputs
        assert a.duration_ms == b.duration_ms

    def test_workload_generation_deterministic(self):
        w1 = vb.make_workload(n_value_streams=2, values_per_barrier=10, n_barriers=2)
        w2 = vb.make_workload(n_value_streams=2, values_per_barrier=10, n_barriers=2)
        assert w1.barrier_stream == w2.barrier_stream
        assert list(w1.value_streams) == list(w2.value_streams)
        for itag in w1.value_streams:
            assert w1.value_streams[itag] == w2.value_streams[itag]
