"""Tests for the measurement harness (§4 methodology) using synthetic
result objects — no simulation needed."""

import math
from dataclasses import dataclass
from typing import List, Sequence

import pytest

from repro.bench import (
    RatePoint,
    latency_profile,
    max_throughput,
    render_matrix,
    render_table,
    scaling_curve,
    speedup,
)
from repro.bench.harness import ScalingPoint


@dataclass
class FakeResult:
    """A system with a hard capacity: achieves min(offered, capacity);
    latency blows up past capacity."""

    offered: float
    capacity: float
    events_in: int = 1000

    @property
    def input_span_ms(self) -> float:
        return self.events_in / self.offered

    @property
    def throughput_events_per_ms(self) -> float:
        return min(self.offered, self.capacity)

    def latency_percentiles(self, qs: Sequence[float] = (10, 50, 90)) -> List[float]:
        base = 1.0 if self.offered <= self.capacity else 50.0
        return [base * (q / 50.0) for q in qs]


def capacity_system(capacity: float):
    return lambda rate: FakeResult(rate, capacity)


class TestMaxThroughput:
    def test_finds_capacity(self):
        sweep = max_throughput(
            capacity_system(500.0), start_rate=50.0, growth=2.0, max_steps=8
        )
        assert sweep.max_throughput == pytest.approx(500.0)

    def test_stops_after_saturation(self):
        sweep = max_throughput(
            capacity_system(100.0), start_rate=50.0, growth=2.0, max_steps=10
        )
        # 50, 100, 200 (sat), 400 (sat) -> stop: at most 5 points.
        assert len(sweep.points) <= 5

    def test_efficiency_and_saturation_point(self):
        sweep = max_throughput(
            capacity_system(100.0), start_rate=50.0, growth=2.0, max_steps=10
        )
        sat = sweep.saturation_point(efficiency=0.9)
        assert sat is not None
        assert sat.offered_per_ms > 100.0

    def test_unsaturated_sweep_returns_last(self):
        sweep = max_throughput(
            capacity_system(1e9), start_rate=10.0, growth=2.0, max_steps=3
        )
        assert len(sweep.points) == 3
        assert sweep.saturation_point() is None


class TestLatencyProfile:
    def test_profiles_each_rate(self):
        pts = latency_profile(capacity_system(100.0), [50.0, 200.0])
        assert len(pts) == 2
        assert pts[0].latency_p50 == pytest.approx(1.0)
        assert pts[1].latency_p50 == pytest.approx(50.0)

    def test_rate_point_efficiency(self):
        p = RatePoint(100.0, 90.0, 0.1, 0.2, 0.3)
        assert p.efficiency == pytest.approx(0.9)
        assert RatePoint(0.0, 0.0, 0, 0, 0).efficiency == 0.0


class TestScalingCurve:
    def test_linear_system(self):
        curve = scaling_curve(
            lambda p: capacity_system(100.0 * p),
            [1, 2, 4],
            start_rate=25.0,
            growth=2.0,
            max_steps=8,
        )
        sp = dict(speedup(curve))
        assert sp[1] == pytest.approx(1.0)
        assert sp[4] == pytest.approx(4.0, rel=0.01)

    def test_speedup_empty_and_zero(self):
        assert speedup([]) == []
        pts = [ScalingPoint(1, 0.0), ScalingPoint(2, 10.0)]
        assert all(math.isnan(s) for _, s in speedup(pts))


class TestRenderers:
    def test_render_table_contains_all_series(self):
        text = render_table(
            "T", "x", [1, 2], {"a": [1.0, 2.0], "b": [3.0, 4.0]}, note="n"
        )
        for token in ("T", "x", "a", "b", "n", "1.00", "4.00"):
            assert token in text

    def test_render_table_handles_short_series_and_nan(self):
        text = render_table("T", "x", [1, 2], {"a": [1.0]})
        assert "-" in text  # missing cell rendered as dash

    def test_render_table_large_numbers_commas(self):
        text = render_table("T", "x", [1], {"a": [123456.0]})
        assert "123,456" in text

    def test_render_matrix(self):
        text = render_matrix(
            "M",
            ["row1", "row2"],
            ["c1", "c2"],
            {"row1": {"c1": "Y", "c2": "N"}, "row2": {"c1": "1.0x"}},
        )
        assert "row1" in text and "c2" in text and "1.0x" in text

    def test_publish_writes_file(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        from repro.bench import publish

        publish("unit_test_artifact", "hello table")
        assert (tmp_path / "unit_test_artifact.txt").read_text() == "hello table\n"
        assert "hello table" in capsys.readouterr().out
