"""Fault injection for the runtime substrates (chaos testing).

A :class:`FaultPlan` is a *seeded, declarative schedule* of faults that
every execution substrate — the simulated cluster, the threaded
runtime, and the process runtime — honors identically, because the
triggers live inside the substrate-independent worker state machine
(:class:`~repro.runtime.protocol.WorkerCore` and the simulated
:class:`~repro.runtime.worker.WorkerActor`):

* :class:`CrashFault` — fail-stop of one worker, keyed by that
  worker's processed-event count or by event timestamp.  The crash
  fires *at an event boundary*: every event the worker processed is
  fully processed (its protocol consequences are sent, its outputs are
  logged), and the triggering event is not.  This is the paper's
  fail-stop model with synchronous output logging; what it deliberately
  does not model is a byzantine half-applied update.
* :class:`DropHeartbeats` — lossy progress signaling: heartbeats
  arriving at one worker are silently discarded.  Drops are bounded to
  timestamps below ``before_ts`` so the closing heartbeat (which lets a
  finite run drain) is always delivered — without it no finite
  execution could terminate, faults or not.

Crash faults fire **once** across a whole recovered execution: the
recovery driver marks them fired, so replaying the input suffix after
restoring a checkpoint does not re-kill the restarted worker.  Drop
faults are re-armed per attempt (dropping the same heartbeat again is
harmless by monotonicity).

Everything here is picklable plain data, so fault state can cross the
process-runtime boundary in both directions (plans into forked
workers, crash records back in worker reports).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

OrderKey = Tuple


@dataclass(frozen=True)
class CrashFault:
    """Fail-stop one worker, triggered at an event boundary.

    Exactly one of the triggers must be set:

    * ``after_events=n`` — fire when the worker is about to process
      its ``n``-th application event (1-based, per execution attempt);
    * ``at_ts=t`` — fire when the worker is about to process an event
      with timestamp ``>= t``.
    """

    worker: str
    after_events: Optional[int] = None
    at_ts: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.after_events is None) == (self.at_ts is None):
            raise ValueError(
                "CrashFault needs exactly one of after_events= / at_ts="
            )
        if self.after_events is not None and self.after_events < 1:
            raise ValueError("after_events must be >= 1")

    def due(self, events_seen: int, ts: float) -> bool:
        if self.after_events is not None:
            return events_seen >= self.after_events
        return ts >= self.at_ts  # type: ignore[operator]


@dataclass(frozen=True)
class DropHeartbeats:
    """Drop heartbeats arriving at ``worker``.

    Only heartbeats whose key timestamp is ``< before_ts`` are
    droppable (the closing heartbeat must always get through, see
    module docstring); at most ``count`` of them are dropped (``None``
    = all matching ones).
    """

    worker: str
    before_ts: float
    count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 1:
            raise ValueError("count must be >= 1 (or None for unlimited)")


Fault = Union[CrashFault, DropHeartbeats]


class WorkerCrash(Exception):
    """Control-flow signal raised inside a worker when a CrashFault
    fires.  Deliberately *not* a :class:`~repro.core.errors.ReproError`:
    library-error handlers must never swallow an injected crash — only
    the substrates' fail-stop handlers catch it.
    """

    def __init__(
        self, worker: str, fault_index: int, events_seen: int, ts: float
    ) -> None:
        super().__init__(
            f"injected crash at worker {worker!r} "
            f"(fault #{fault_index}, event #{events_seen}, ts={ts})"
        )
        self.record = CrashRecord(worker, fault_index, events_seen, ts)


@dataclass(frozen=True)
class CrashRecord:
    """What actually fired: crosses the process boundary in reports."""

    worker: str
    fault_index: int
    events_seen: int
    ts: float


class WorkerFaultView:
    """One worker's per-attempt view of the plan: local trigger
    counters plus the not-yet-fired crash faults assigned to it."""

    def __init__(
        self,
        worker: str,
        crashes: List[Tuple[int, CrashFault]],
        drops: List[DropHeartbeats],
    ) -> None:
        self.worker = worker
        self._crashes = list(crashes)
        self._drops = [[d.before_ts, d.count] for d in drops]
        self.events_seen = 0

    def note_event(self, ts: float) -> None:
        """Called before a worker processes an application event;
        raises :class:`WorkerCrash` when a crash fault is due."""
        self.events_seen += 1
        for index, fault in self._crashes:
            if fault.due(self.events_seen, ts):
                raise WorkerCrash(self.worker, index, self.events_seen, ts)

    def should_drop_heartbeat(self, key: OrderKey) -> bool:
        ts = key[0]
        for window in self._drops:
            before_ts, budget = window
            if ts < before_ts and (budget is None or budget > 0):
                if budget is not None:
                    window[1] = budget - 1
                return True
        return False


class FaultPlan:
    """A schedule of faults over a plan's workers.

    ``fired`` is coordinator-side bookkeeping: crash faults whose
    indices appear there are excluded from the views handed to workers
    on later recovery attempts.
    """

    def __init__(self, *faults: Fault) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)
        self.fired: set = set()

    def crash_indices(self) -> List[int]:
        return [
            i for i, f in enumerate(self.faults) if isinstance(f, CrashFault)
        ]

    def has_crash_faults(self) -> bool:
        return any(isinstance(f, CrashFault) for f in self.faults)

    def mark_fired(self, index: int) -> None:
        if not isinstance(self.faults[index], CrashFault):
            raise ValueError(f"fault #{index} is not a crash fault")
        self.fired.add(index)

    def view_for(self, worker: str) -> Optional[WorkerFaultView]:
        """A fresh per-attempt view for one worker; None when the plan
        holds nothing for it (the common case — zero overhead)."""
        crashes = [
            (i, f)
            for i, f in enumerate(self.faults)
            if isinstance(f, CrashFault)
            and f.worker == worker
            and i not in self.fired
        ]
        drops = [
            f
            for f in self.faults
            if isinstance(f, DropHeartbeats) and f.worker == worker
        ]
        if not crashes and not drops:
            return None
        return WorkerFaultView(worker, crashes, drops)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(type(f).__name__ for f in self.faults)
        return f"FaultPlan([{kinds}], fired={sorted(self.fired)})"
