"""ASCII renderers for the reproduced figures and tables.

Every benchmark regenerates its paper artifact as a plain-text table
(series per column) written both to stdout and to
``benchmarks/results/``; EXPERIMENTS.md records the paper-vs-measured
comparison for each.
"""

from __future__ import annotations

import json
import math
import os
from typing import Any, Mapping, Sequence


def _fmt(value: Any, width: int = 10) -> str:
    if isinstance(value, float):
        if math.isnan(value):
            return "-".rjust(width)
        if value >= 1000:
            return f"{value:,.0f}".rjust(width)
        if 0 < abs(value) < 0.05:
            return f"{value:.4f}".rjust(width)
        return f"{value:.2f}".rjust(width)
    return str(value).rjust(width)


def render_table(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: Mapping[str, Sequence[Any]],
    *,
    note: str = "",
) -> str:
    """Render one figure/table: rows = x values, columns = series."""
    names = list(series)
    width = max(10, *(len(n) + 2 for n in names)) if names else 10
    lines = [f"== {title} =="]
    if note:
        lines.append(f"   {note}")
    header = x_label.rjust(12) + "".join(n.rjust(width) for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = _fmt(x, 12)
        for n in names:
            col = series[n]
            row += _fmt(col[i] if i < len(col) else math.nan, width)
        lines.append(row)
    return "\n".join(lines)


def render_matrix(
    title: str,
    row_labels: Sequence[str],
    col_labels: Sequence[str],
    cells: Mapping[str, Mapping[str, Any]],
    *,
    note: str = "",
) -> str:
    """Render a label matrix (Table 1 style: rows = criteria, columns =
    system/app combinations)."""
    width = max(8, *(len(c) + 2 for c in col_labels)) if col_labels else 8
    label_w = max(len(r) for r in row_labels) + 2 if row_labels else 12
    lines = [f"== {title} =="]
    if note:
        lines.append(f"   {note}")
    header = " " * label_w + "".join(c.rjust(width) for c in col_labels)
    lines.append(header)
    lines.append("-" * len(header))
    for r in row_labels:
        row = r.ljust(label_w)
        for c in col_labels:
            row += _fmt(cells.get(r, {}).get(c, ""), width)
        lines.append(row)
    return "\n".join(lines)


def results_dir() -> str:
    d = os.environ.get(
        "REPRO_RESULTS_DIR",
        os.path.join(os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))), "benchmarks", "results"),
    )
    os.makedirs(d, exist_ok=True)
    return d


def publish(name: str, text: str) -> str:
    """Print a rendered artifact and persist it under benchmarks/results/."""
    print()
    print(text)
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w") as f:
        f.write(text + "\n")
    return path


def publish_json(name: str, record: Mapping[str, Any]) -> str:
    """Persist a machine-readable benchmark record as
    ``BENCH_<name>.json`` under benchmarks/results/.

    Records are built by :func:`repro.bench.harness.bench_record`; the
    CI perf gate (``benchmarks/perf_gate.py``) compares them against
    the committed baselines in ``benchmarks/baselines/``."""
    path = os.path.join(results_dir(), f"BENCH_{name}.json")
    with open(path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    return path
