"""Mini Flink-style sharded dataflow engine + the paper's applications
in automatic, sequential, and manual-synchronization variants (§4.2-4.3,
Appendix G)."""

from .apps import build_event_window_job, build_fraud_job, build_pageview_job
from .engine import (
    FlinkJob,
    FlinkResult,
    JobGraph,
    OperatorInstance,
    Rec,
    TimestampMerger,
    Watermark,
)
from .splan import (
    ForkJoinService,
    build_fraud_splan_job,
    build_pageview_splan_job,
)

__all__ = [
    "FlinkJob",
    "FlinkResult",
    "ForkJoinService",
    "JobGraph",
    "OperatorInstance",
    "Rec",
    "TimestampMerger",
    "Watermark",
    "build_event_window_job",
    "build_fraud_job",
    "build_fraud_splan_job",
    "build_pageview_job",
    "build_pageview_splan_job",
]
