"""Service-mode tests: the epoch engine (admission, commit ledger,
crash recovery, reconfiguration), the wire protocol, the TCP
ingest/egress tier, and the end-to-end acceptance scenario (10k+
events over TCP with a mid-stream worker crash and an induced
admission-pressure spike, differential against the sequential spec)."""

import socket
import threading
import urllib.request
from collections import Counter

import pytest

from repro.apps import keycounter
from repro.core.errors import RuntimeFault
from repro.core.events import Event, ImplTag
from repro.plans.generation import root_and_leaves_plan
from repro.plans.morph import plan_width
from repro.runtime import (
    CrashFault,
    FaultPlan,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    every_root_join,
    get_backend,
    run_on_backend,
)
from repro.runtime.options import ServeOptions
from repro.runtime.wire import FRAME_LEN
from repro.serve import (
    ADMITTED,
    REJECT_BACKPRESSURE,
    REJECT_CLOSED,
    REJECT_LATE,
    REJECT_ORDER,
    REJECT_UNKNOWN,
    AdmissionGate,
    ServiceRuntime,
    connect,
    keycounter_app,
    spec_outputs,
    start_service,
    value_barrier_app,
)
from repro.serve.protocol import (
    control_frame,
    decode_outputs,
    events_frame,
    ingest_events_frame,
    outputs_frame,
    parse_frame,
)


def _multiset(values):
    return Counter(map(repr, values))


def _drain(svc, events, *, every=40):
    """Offer all events, running an epoch every ``every`` admissions."""
    for i, event in enumerate(events):
        assert svc.offer(event) == ADMITTED
        if i % every == every - 1:
            svc.run_epoch()
    return svc.finish()


class TestAdmissionGate:
    def test_trips_at_high_watermark_with_hysteresis(self):
        gate = AdmissionGate(10, 5)
        assert not gate.decide(9)
        assert gate.decide(10)
        # Paused until the backlog drains to the resume watermark.
        assert gate.decide(9)
        assert gate.decide(6)
        assert not gate.decide(5)
        assert not gate.decide(9)  # hysteresis: no flap below high

    def test_runtime_backlog_signal(self):
        gate = AdmissionGate(100, 50, runtime_watermark=8)
        assert not gate.decide(0, runtime_hw=7)
        assert gate.decide(0, runtime_hw=8)
        # Ingest drained, but the runtime signal still holds it shut.
        assert gate.decide(0, runtime_hw=8)
        assert not gate.decide(0, runtime_hw=7)

    def test_both_signals_must_clear(self):
        gate = AdmissionGate(10, 5, runtime_watermark=8)
        assert gate.decide(10, runtime_hw=0)
        assert gate.decide(0, runtime_hw=9)  # ingest fine, runtime not
        assert not gate.decide(0, runtime_hw=0)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionGate(10, 10)
        with pytest.raises(ValueError):
            AdmissionGate(0, 0)


class TestServeOptions:
    def test_resume_watermark_defaults_to_half(self):
        assert ServeOptions(ingest_high_watermark=100).resume_watermark() == 50
        assert (
            ServeOptions(
                ingest_high_watermark=100, ingest_resume_watermark=10
            ).resume_watermark()
            == 10
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ServeOptions(epoch_events=0)
        with pytest.raises(ValueError):
            ServeOptions(epoch_idle_ms=-1.0)
        with pytest.raises(ValueError):
            ServeOptions(ingest_high_watermark=0)
        with pytest.raises(ValueError):
            ServeOptions(ingest_high_watermark=10, ingest_resume_watermark=10)
        with pytest.raises(ValueError):
            ServeOptions(runtime_backlog_watermark=0)


class TestRunEntryFinalized:
    """PR 6 deprecated loose kwargs on the run entry; the grace period
    is over — they now raise with a migration hint."""

    def _case(self):
        app = keycounter_app(shards=2)
        events = app.make_events(100)
        by_itag = {}
        for e in events:
            by_itag.setdefault(e.itag, []).append(e)
        from repro.runtime.runtime import InputStream

        streams = [InputStream(t, tuple(v)) for t, v in by_itag.items()]
        return app, streams

    def test_loose_kwargs_raise_with_hint(self):
        app, streams = self._case()
        with pytest.raises(TypeError, match=r"RunOptions\(timeout_s=\.\.\.\)"):
            run_on_backend("threaded", app.program, app.plan, streams, timeout_s=30.0)
        with pytest.raises(TypeError, match="no loose keyword"):
            get_backend("threaded").run(
                app.program, app.plan, streams, fault_plan=None, metrics=True
            )

    def test_attempt_is_public_and_bounded(self):
        app, streams = self._case()
        out = get_backend("threaded").attempt(
            app.program,
            app.plan,
            streams,
            options=RunOptions(checkpoint_predicate=every_root_join()),
        )
        spec = spec_outputs(app.program, [e for s in streams for e in s.events])
        assert _multiset(out.outputs) == _multiset(spec)
        assert out.checkpoints and out.keyed_outputs
        assert out.crashes == [] and out.quiesce is None


class TestServiceRuntimeEpochs:
    def test_epoch_ledger_matches_spec(self):
        app = keycounter_app(shards=2, reset_every=10)
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        events = app.make_events(400)
        _drain(svc, events, every=37)
        assert _multiset(svc.committed) == _multiset(spec_outputs(app.program, events))
        assert svc.counters.admitted == 400
        assert svc.counters.committed == len(svc.committed)
        assert svc.backlog == 0

    def test_committed_since_cursors(self):
        app = keycounter_app(shards=2, reset_every=5)
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        _drain(svc, app.make_events(50), every=25)
        tail, nxt = svc.committed_since(0)
        assert nxt == len(svc.committed) and tail == svc.committed
        mid, nxt2 = svc.committed_since(4)
        assert mid == svc.committed[4:] and nxt2 == nxt
        assert svc.committed_since(nxt) == ([], nxt)

    def test_empty_epoch_is_noop(self):
        app = keycounter_app()
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        report = svc.run_epoch()
        assert report.sealed_events == 0 and report.attempts == 0
        assert svc.counters.epochs == 0  # a no-op seal is not an epoch

    def test_epoch_without_root_traffic_commits_nothing_yet(self):
        app = keycounter_app(shards=2)
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        incs = [
            Event(keycounter.inc_tag(0), f"i{i % 2}", float(i + 1), 1)
            for i in range(20)
        ]
        for e in incs:
            assert svc.offer(e) == ADMITTED
        report = svc.run_epoch()
        # No root join in the batch -> no snapshot -> nothing commits;
        # the whole sealed set stays pending for the next epoch.
        assert report.committed == 0 and svc.backlog == 20
        assert svc.offer(Event(keycounter.reset_tag(0), "r", 100.0, None)) == ADMITTED
        svc.run_epoch()
        assert [v for v in svc.committed] == [(0, 20)]
        assert svc.backlog == 0  # commit key is the reset: all drained

    def test_admission_rejection_reasons(self):
        app = keycounter_app(shards=2, reset_every=5)
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        assert svc.offer(Event(("i", 99), "i0", 1.0, 1)) == REJECT_UNKNOWN
        assert svc.offer(Event(keycounter.inc_tag(0), "i0", 5.0, 1)) == ADMITTED
        assert svc.offer(Event(keycounter.inc_tag(0), "i0", 5.0, 1)) == REJECT_ORDER
        # Seal: the floor rises to the highest sealed ts.
        svc.run_epoch()
        assert svc.offer(Event(keycounter.inc_tag(0), "i1", 4.0, 1)) == REJECT_LATE
        assert svc.offer(Event(keycounter.inc_tag(0), "i1", 6.0, 1)) == ADMITTED
        svc.finish()
        assert svc.offer(Event(keycounter.inc_tag(0), "i0", 99.0, 1)) == REJECT_CLOSED
        assert set(svc.counters.rejected) == {
            REJECT_UNKNOWN,
            REJECT_ORDER,
            REJECT_LATE,
            REJECT_CLOSED,
        }

    def test_backpressure_flips_and_recovers(self):
        app = keycounter_app(shards=2, reset_every=5)
        svc = ServiceRuntime(
            app.program,
            app.plan,
            options=ServeOptions(
                ingest_high_watermark=10, ingest_resume_watermark=3
            ),
        )
        events = app.make_events(30)
        admitted = [e for e in events[:10] if svc.offer(e) == ADMITTED]
        assert len(admitted) == 10
        # Watermark reached: admission pauses and reports it.
        assert svc.offer(events[10]) == REJECT_BACKPRESSURE
        assert svc.admission_paused()
        assert svc.counters.rejected[REJECT_BACKPRESSURE] >= 1
        # An epoch commits through the sealed resets and drains the
        # backlog below the resume watermark: admission resumes.
        svc.run_epoch()
        assert svc.backlog <= 3
        assert not svc.admission_paused()
        assert svc.offer(events[11]) == ADMITTED
        svc.finish()
        final = admitted + [events[11]]
        assert _multiset(svc.committed) == _multiset(spec_outputs(app.program, final))

    def test_runtime_backlog_watermark_pauses_admission(self):
        app = keycounter_app(shards=2, reset_every=5)
        svc = ServiceRuntime(
            app.program,
            app.plan,
            options=ServeOptions(runtime_backlog_watermark=1),
        )
        events = app.make_events(40)
        for e in events[:20]:
            assert svc.offer(e) == ADMITTED
        svc.run_epoch()
        # The epoch's mailbox high-water crossed the (tiny) watermark:
        # the metrics-plane signal now holds admission shut.
        assert svc.metrics is not None
        assert svc.metrics.merged().max_backlog >= 1
        assert svc.offer(events[20]) == REJECT_BACKPRESSURE
        assert svc.counters.rejected[REJECT_BACKPRESSURE] == 1

    def test_crash_before_first_checkpoint_replays_epoch(self):
        app = keycounter_app(shards=2, reset_every=10)
        leaf = app.plan.root.children[0].id
        svc = ServiceRuntime(
            app.program,
            app.plan,
            options=ServeOptions(
                run=RunOptions(fault_plan=FaultPlan(CrashFault(leaf, after_events=1)))
            ),
        )
        events = app.make_events(40)
        _drain(svc, events, every=40)
        assert svc.counters.crashes_recovered == 1
        assert _multiset(svc.committed) == _multiset(spec_outputs(app.program, events))

    def test_crash_mid_service_exactly_once(self):
        app = keycounter_app(shards=2, reset_every=10)
        leaf = app.plan.root.children[1].id
        svc = ServiceRuntime(
            app.program,
            app.plan,
            options=ServeOptions(
                run=RunOptions(
                    # Must fire within one epoch's attempt: each 60-event
                    # epoch routes ~27 events to this shard's leaf.
                    fault_plan=FaultPlan(CrashFault(leaf, after_events=20)),
                    metrics=True,
                )
            ),
        )
        events = app.make_events(300)
        _drain(svc, events, every=60)
        assert svc.counters.crashes_recovered == 1
        assert svc.counters.attempts == svc.counters.epochs + 1
        assert _multiset(svc.committed) == _multiset(spec_outputs(app.program, events))
        assert svc.metrics is not None and svc.metrics.attempts == svc.counters.attempts

    def test_planned_reconfiguration_across_epochs(self):
        prog = keycounter.make_program(1)
        inc, reset = keycounter.inc_tag(0), keycounter.reset_tag(0)
        plan = root_and_leaves_plan(
            prog,
            [ImplTag(reset, "r")],
            [
                [ImplTag(inc, "i0"), ImplTag(inc, "i1")],
                [ImplTag(inc, "i2"), ImplTag(inc, "i3")],
            ],
        )
        svc = ServiceRuntime(
            prog,
            plan,
            options=ServeOptions(
                run=RunOptions(
                    reconfig_schedule=ReconfigSchedule(
                        ReconfigPoint(at_ts=100.0, to_leaves=4)
                    )
                )
            ),
        )
        events = []
        ts = 0.0
        for i in range(300):
            ts += 1.0
            if (i + 1) % 10 == 0:
                events.append(Event(reset, "r", ts, None))
            else:
                events.append(Event(inc, f"i{i % 4}", ts, 1))
        _drain(svc, events, every=60)
        assert svc.counters.reconfigurations == 1
        assert [plan_width(p) for p in svc.plan_history] == [2, 4]
        # The migrated plan persists across later epochs.
        assert plan_width(svc.plan) == 4
        assert _multiset(svc.committed) == _multiset(spec_outputs(prog, events))

    def test_service_gauges_snapshot(self):
        app = keycounter_app(reset_every=5)
        svc = ServiceRuntime(app.program, app.plan, options=ServeOptions())
        _drain(svc, app.make_events(20), every=10)
        gauges = svc.service_gauges()
        assert gauges["admitted_total"] == 20.0
        assert gauges["committed_total"] == float(len(svc.committed))
        assert gauges["epochs_total"] == float(svc.counters.epochs)
        assert gauges["admission_paused"] == 0.0
        assert set(gauges) == {
            "admitted_total",
            "rejected_total",
            "committed_total",
            "backlog",
            "epochs_total",
            "attempts_total",
            "crashes_recovered_total",
            "reconfigurations_total",
            "admission_paused",
        }


class TestProtocol:
    def test_control_frame_round_trip(self):
        frame = control_frame({"type": "hello", "v": 1})
        (length,) = FRAME_LEN.unpack(frame[:4])
        kind, blob = parse_frame(frame[4 : 4 + length])
        assert kind == "control" and blob == {"type": "hello", "v": 1}

    def test_events_frame_round_trip(self):
        events = [Event(keycounter.inc_tag(0), "i0", float(i), i) for i in range(5)]
        frame = ingest_events_frame(events)
        kind, msgs = parse_frame(frame[4:])
        assert kind == "events"
        assert [m.event for m in msgs] == events

    def test_outputs_frame_round_trip(self):
        frame = outputs_frame([(0, 7), (1, 9)], start_seq=41)
        _kind, msgs = parse_frame(frame[4:])
        assert decode_outputs(msgs) == [(41, (0, 7)), (42, (1, 9))]

    def test_rejects_garbage(self):
        with pytest.raises(RuntimeFault):
            parse_frame(b"")
        with pytest.raises(RuntimeFault):
            parse_frame(b"\x00junk")
        with pytest.raises(RuntimeFault):
            parse_frame(b"C not json")
        with pytest.raises(RuntimeFault):
            parse_frame(b"C[1, 2]")  # JSON but not an object
        with pytest.raises(RuntimeFault):
            decode_outputs(parse_frame(events_frame([]))[1] + ["nonsense"])


class TestServiceTCP:
    @pytest.mark.parametrize("make_app", [keycounter_app, value_barrier_app])
    def test_end_to_end_matches_spec(self, make_app):
        app = make_app()
        events = app.make_events(1200)
        opts = ServeOptions(epoch_events=200, epoch_idle_ms=20.0)
        with start_service(app.program, app.plan, options=opts) as handle:
            received = []
            sub = connect(handle.port, handle.cookie, mode="subscribe")
            consumer = threading.Thread(
                target=lambda: received.extend(sub.outputs())
            )
            consumer.start()
            with connect(handle.port, handle.cookie) as ingest:
                ack = ingest.send_events(events, batch=100)
                assert ack.admitted == len(events) and ack.rejected == 0
                total = ingest.finish()
            consumer.join(timeout=60)
            assert not consumer.is_alive()
        seqs = [seq for seq, _ in received]
        assert seqs == list(range(len(seqs)))  # gapless, duplicate-free
        assert total == len(received)
        want = _multiset(spec_outputs(app.program, events))
        assert _multiset([v for _, v in received]) == want

    def test_flush_and_late_subscriber_from_seq(self):
        app = keycounter_app(reset_every=5)
        opts = ServeOptions(epoch_events=10**9, epoch_idle_ms=10_000.0)
        with start_service(app.program, app.plan, options=opts) as handle:
            with connect(handle.port, handle.cookie) as ingest:
                ingest.send_events(app.make_events(50))
                committed = ingest.flush()
                assert committed == 10
                # A late subscriber catches up from its cursor.
                with connect(
                    handle.port, handle.cookie, mode="subscribe", from_seq=4
                ) as sub:
                    assert sub.server_seq == 10
                ingest.finish()
            with connect(
                handle.port, handle.cookie, mode="subscribe", from_seq=4
            ) as sub:
                got = list(sub.outputs())
            assert [seq for seq, _ in got] == list(range(4, 10))
            assert [v for _, v in got] == handle.runtime.committed[4:]

    def test_rejections_reported_in_ack(self):
        app = keycounter_app()
        opts = ServeOptions(epoch_events=10**9, epoch_idle_ms=10_000.0)
        with start_service(app.program, app.plan, options=opts) as handle:
            with connect(handle.port, handle.cookie) as ingest:
                good = Event(keycounter.inc_tag(0), "i0", 10.0, 1)
                stale = Event(keycounter.inc_tag(0), "i0", 10.0, 1)  # not increasing
                unknown = Event(("i", 99), "i0", 11.0, 1)
                ack = ingest.send_events([good, stale, unknown])
                assert ack.admitted == 1 and ack.rejected == 2
                assert ack.reasons == {REJECT_ORDER: 1, REJECT_UNKNOWN: 1}

    def test_bad_cookie_and_garbage_are_strays(self):
        app = keycounter_app(reset_every=5)
        opts = ServeOptions(epoch_events=10**9, epoch_idle_ms=10_000.0)
        with start_service(app.program, app.plan, options=opts) as handle:
            # Wrong cookie: dropped before any state is touched.
            with pytest.raises(RuntimeFault, match="closed while waiting"):
                connect(handle.port, "not-the-cookie")
            # Raw garbage: framed nonsense, then a dead socket.
            sock = socket.create_connection(("127.0.0.1", handle.port), timeout=10)
            sock.sendall(FRAME_LEN.pack(7) + b"Znoise!")
            assert sock.recv(1024) == b""  # server hung up, no crash
            sock.close()
            # The service still works for authenticated clients.
            with connect(handle.port, handle.cookie) as ingest:
                events = app.make_events(20)
                assert ingest.send_events(events).admitted == 20
                assert ingest.finish() == 4
            assert handle.server.strays == 2

    def test_process_backend_epochs(self):
        app = keycounter_app(reset_every=10)
        opts = ServeOptions(
            backend="process",
            epoch_events=10**9,
            epoch_idle_ms=30_000.0,
        )
        events = app.make_events(120)
        with start_service(app.program, app.plan, options=opts) as handle:
            with connect(handle.port, handle.cookie) as ingest:
                assert ingest.send_events(events[:60]).admitted == 60
                ingest.flush()
                assert ingest.send_events(events[60:]).admitted == 60
                ingest.finish()
            got = _multiset(handle.runtime.committed)
        assert got == _multiset(spec_outputs(app.program, events))


class TestServiceAcceptance:
    def test_10k_events_crash_and_backpressure_over_tcp(self):
        """The PR's acceptance scenario: an external client streams
        10k+ events over TCP while a worker crash fault is armed and
        the ingest watermark is low enough that sustained sending
        trips admission control.  The subscriber must receive exactly
        the sequential-spec outputs of the *admitted* events — no
        duplicates, no loss — and the rejections must have been
        observed and reported to the client."""
        app = keycounter_app(shards=2, reset_every=25)
        leaf = app.plan.root.children[0].id
        opts = ServeOptions(
            epoch_events=10**9,  # epochs driven by flush below
            epoch_idle_ms=60_000.0,
            ingest_high_watermark=600,
            ingest_resume_watermark=100,
            run=RunOptions(
                fault_plan=FaultPlan(CrashFault(leaf, after_events=150)),
                metrics=True,
            ),
            metrics_port=0,
        )
        events = app.make_events(13_000)
        admitted, rejected_total = [], 0
        reasons = Counter()
        with start_service(app.program, app.plan, options=opts) as handle:
            received = []
            sub = connect(
                handle.port, handle.cookie, mode="subscribe", timeout=120.0
            )
            consumer = threading.Thread(target=lambda: received.extend(sub.outputs()))
            consumer.start()
            with connect(handle.port, handle.cookie, timeout=120.0) as ingest:
                for event in events:
                    ack = ingest.send_events([event])
                    if ack.admitted:
                        admitted.append(event)
                    rejected_total += ack.rejected
                    reasons.update(ack.reasons)
                    if ack.paused or ack.rejected:
                        ingest.flush()  # drain: admission must resume
                ingest.finish()
            consumer.join(timeout=120)
            assert not consumer.is_alive()

            counters = handle.runtime.counters
            assert counters.crashes_recovered == 1
            scrape = urllib.request.urlopen(
                f"http://127.0.0.1:{handle.metrics_port}/metrics", timeout=10
            ).read().decode()
            assert "repro_serve_crashes_recovered_total 1.0" in scrape
            assert f"repro_serve_admitted_total {float(len(admitted))}" in scrape

        # Admission pressure was really induced, and reported.
        assert rejected_total > 0
        assert reasons[REJECT_BACKPRESSURE] == rejected_total
        assert counters.rejected[REJECT_BACKPRESSURE] == rejected_total
        # And the service still admitted the acceptance floor.
        assert len(admitted) >= 10_000

        # Exactly-once: gapless sequence numbers, spec-identical values.
        seqs = [seq for seq, _ in received]
        assert seqs == list(range(len(seqs)))
        want = _multiset(spec_outputs(app.program, admitted))
        assert _multiset([v for _, v in received]) == want
