"""The service core: unbounded ingest on a bounded-run engine.

Every substrate in :mod:`repro.runtime` executes *closed* runs — finite
streams, a drain, a result.  :class:`ServiceRuntime` turns that engine
into a long-running service by slicing the live ingest into **epochs**:

1. **Admit** — :meth:`offer` buffers externally produced events,
   subject to admission control (below).  Rejected events are counted
   by reason and reported to the caller, never silently dropped.
2. **Seal** — :meth:`run_epoch` snapshots the buffer into one
   per-implementation-tag stream set (every itag of the plan gets a
   stream, empty ones included, so closing heartbeats let the run
   drain) and runs it as one backend attempt via the public
   :meth:`~repro.runtime.RuntimeBackend.attempt` hook.
3. **Commit** — after a clean attempt, outputs at or below the
   attempt's newest root-join checkpoint key are appended to the
   committed log (the egress channel's exactly-once source of truth);
   the checkpoint state carries into the next epoch and the input
   suffix above the key is replayed there.  This is precisely the
   restore-and-replay bookkeeping of :mod:`repro.runtime.recovery`,
   applied *forward* at every epoch boundary instead of only after
   crashes.

Crashes and reconfigurations keep working under live ingest because an
epoch attempt is driven exactly like the recovery/reconfig drivers
drive theirs: a crashed attempt restores the latest snapshot and
replays (:func:`~repro.runtime.recovery.restart_from_crash`); a
quiesced attempt commits the prefix, migrates the plan
(:meth:`~repro.runtime.reconfigure.ReconfigSchedule.target_plan`), and
the morphed plan persists across epochs.  Fault-plan and schedule
firing bookkeeping is service-lifetime, so each crash fault and each
planned reconfiguration point fires at most once per service.

**Why commit-by-prefix is sound across epochs.**  The recovery
theorem (paper Thm. 2.4 / Appendix D.2) needs two things: root
snapshots must be timestamp-prefix states
(:func:`~repro.runtime.recovery.assert_recovery_sound`, checked for
every plan the service runs), and no event at or below a committed key
may arrive afterwards.  The second is enforced by admission: the
service tracks a **seal floor** — the highest event timestamp ever
sealed into an epoch — and rejects (reason ``"late"``) any offer at or
below it.  Every commit key originates from a sealed event, so the
commit key can never climb above the floor, and an admitted event is
always strictly above every past and future commit key.  Within one
implementation tag, timestamps must also be strictly increasing
(reason ``"out-of-order"``), matching the input-validity contract
every closed run already has.

**Backpressure.**  Admission pauses on either of two signals with
pause/resume hysteresis (:class:`AdmissionGate`): the count of
admitted-but-uncommitted events crossing ``ingest_high_watermark``,
and — when ``runtime_backlog_watermark`` is set — the previous
epoch's cluster-wide mailbox-backlog high-water crossing it.  The
latter is the same piggybacked queue-depth signal the
:class:`~repro.runtime.reconfigure.AutoScaler` reads, surfaced here
from the metrics plane.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.errors import RuntimeFault
from ..core.events import Event, ImplTag
from ..core.program import DGSProgram
from ..plans.morph import max_width, plan_width
from ..plans.plan import SyncPlan
from ..plans.validity import assert_reconfig_compatible
from ..runtime import get_backend
from ..runtime.checkpoint import Checkpoint, every_root_join
from ..runtime.faults import CrashRecord
from ..runtime.metrics import RunMetrics, merge_attempt_metrics
from ..runtime.options import RunOptions, ServeOptions
from ..runtime.protocol import INIT_STATE
from ..runtime.reconfigure import ReconfigStep
from ..runtime.recovery import (
    assert_recovery_sound,
    restart_from_crash,
    suffix_streams,
)
from ..runtime.runtime import InputStream

#: Admission outcomes returned by :meth:`ServiceRuntime.offer`.
ADMITTED = "admitted"
REJECT_BACKPRESSURE = "backpressure"
REJECT_UNKNOWN = "unknown-itag"
REJECT_ORDER = "out-of-order"
REJECT_LATE = "late"
REJECT_CLOSED = "closed"

REJECT_REASONS = (
    REJECT_BACKPRESSURE,
    REJECT_UNKNOWN,
    REJECT_ORDER,
    REJECT_LATE,
    REJECT_CLOSED,
)


class AdmissionGate:
    """Two-signal pause/resume hysteresis for ingest admission.

    Trips when either the ingest backlog reaches ``high`` or the
    runtime backlog high-water reaches ``runtime_watermark`` (when
    configured); clears only when the ingest backlog has drained to
    ``resume`` *and* the runtime signal is back under its watermark.
    Hysteresis (``resume < high``) keeps admission from flapping
    per-event at the boundary.
    """

    def __init__(
        self, high: int, resume: int, runtime_watermark: Optional[int] = None
    ) -> None:
        if not 0 <= resume < high:
            raise ValueError("need 0 <= resume < high")
        self.high = high
        self.resume = resume
        self.runtime_watermark = runtime_watermark
        self.paused = False

    def decide(self, backlog: int, runtime_hw: int = 0) -> bool:
        """Update and return the paused state for the current signals."""
        rw = self.runtime_watermark
        runtime_trip = rw is not None and runtime_hw >= rw
        if self.paused:
            if backlog <= self.resume and not runtime_trip:
                self.paused = False
        elif backlog >= self.high or runtime_trip:
            self.paused = True
        return self.paused


@dataclass
class ServiceCounters:
    """Service-lifetime ingest/egress accounting."""

    admitted: int = 0
    rejected: Dict[str, int] = field(default_factory=dict)
    committed: int = 0
    epochs: int = 0
    attempts: int = 0
    crashes_recovered: int = 0
    reconfigurations: int = 0

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())

    def note_rejected(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1


@dataclass
class EpochReport:
    """One sealed-and-run ingest epoch."""

    index: int
    final: bool
    sealed_events: int
    attempts: int = 0
    #: Outputs committed by this epoch; their egress sequence numbers
    #: are ``[first_seq, first_seq + committed)``.
    committed: int = 0
    first_seq: int = 0
    crashes: List[CrashRecord] = field(default_factory=list)
    reconfigurations: List[ReconfigStep] = field(default_factory=list)
    backlog_after: int = 0
    wall_s: float = 0.0
    #: Merge of the epoch's per-attempt RunMetrics (metrics plane on).
    metrics: Optional[RunMetrics] = None


class ServiceRuntime:
    """Long-running execution of one program over a live ingest.

    Thread-safe by construction: :meth:`offer` (called from the ingest
    tier, possibly concurrently with a running epoch) only touches the
    buffer under a lock, and :meth:`run_epoch` is internally
    serialized.  The committed log only ever grows; egress readers
    follow it by sequence number (:meth:`committed_since`).
    """

    def __init__(
        self,
        program: DGSProgram,
        plan: SyncPlan,
        *,
        options: Optional[ServeOptions] = None,
    ) -> None:
        self.program = program
        self.plan = plan
        self.options = options if options is not None else ServeOptions()
        run = self.options.run
        if run.checkpoint_predicate is None:
            # The service cannot make progress without commit points.
            run = replace(run, checkpoint_predicate=every_root_join())
        if self.options.runtime_backlog_watermark is not None and not run.metrics:
            run = replace(run, metrics=True)
        self._run_options: RunOptions = run
        self._backend = get_backend(self.options.backend)
        self._check_plan(plan)

        # The itag universe is fixed at construction: every epoch must
        # cover all of them (a missing stream would stall dependent
        # frontiers at -inf and hang the drain).
        itags = sorted(
            {t for w in plan.workers() for t in w.itags}, key=repr
        )
        self._itags: Tuple[ImplTag, ...] = tuple(itags)
        self._known = frozenset(itags)

        self._lock = threading.Lock()
        self._epoch_mutex = threading.Lock()
        #: itag -> events admitted since the last seal.
        self._inbox: Dict[ImplTag, List[Event]] = {t: [] for t in itags}
        self._inbox_count = 0
        #: itag -> sealed-but-uncommitted events (the replay suffix).
        self._pending: Dict[ImplTag, List[Event]] = {t: [] for t in itags}
        self._pending_count = 0
        #: Per-itag last admitted timestamp (strict monotonicity).
        self._last_ts: Dict[ImplTag, float] = {}
        #: Highest timestamp ever sealed into an epoch; admission below
        #: it is "late" (see module docstring for why this is the
        #: exactly-once linchpin).
        self._seal_floor = float("-inf")

        self._state: Any = INIT_STATE
        self._last_ckpt: Optional[Checkpoint] = None
        self._runtime_backlog_hw = 0
        self._finished = False

        self.gate = AdmissionGate(
            self.options.ingest_high_watermark,
            self.options.resume_watermark(),
            self.options.runtime_backlog_watermark,
        )
        self.counters = ServiceCounters()
        #: The committed output log; index == egress sequence number.
        self.committed: List[Any] = []
        self.epochs: List[EpochReport] = []
        self.plan_history: List[SyncPlan] = [plan]
        #: Service-lifetime accumulated RunMetrics (None: plane off).
        self.metrics: Optional[RunMetrics] = None

        # Service-lifetime reconfiguration bookkeeping (mirrors the
        # driver-local sets in run_with_reconfig).
        self._reconfig_fired: set = set()
        self._autoscale_spent = 0

    def _check_plan(self, plan: SyncPlan) -> None:
        # Single-worker plans take no root-join snapshots, so nothing
        # would ever commit before finish(); that is a degenerate
        # service.  Multi-worker plans must have prefix-state roots.
        if len(plan.workers()) > 1:
            assert_recovery_sound(plan, self.program)

    # -- admission -------------------------------------------------------
    @property
    def backlog(self) -> int:
        """Admitted-but-uncommitted events (inbox + replay suffix)."""
        with self._lock:
            return self._inbox_count + self._pending_count

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def itags(self) -> Tuple[ImplTag, ...]:
        return self._itags

    def offer(self, event: Event) -> str:
        """Admit one external event, or reject it with a reason.

        Returns :data:`ADMITTED` or one of the ``REJECT_*`` reasons;
        every rejection is counted so the ingest tier can report it."""
        with self._lock:
            if self._finished:
                reason = REJECT_CLOSED
            elif event.itag not in self._known:
                reason = REJECT_UNKNOWN
            elif event.ts <= self._seal_floor:
                reason = REJECT_LATE
            elif event.ts <= self._last_ts.get(event.itag, float("-inf")):
                reason = REJECT_ORDER
            elif self.gate.decide(
                self._inbox_count + self._pending_count, self._runtime_backlog_hw
            ):
                reason = REJECT_BACKPRESSURE
            else:
                self._inbox[event.itag].append(event)
                self._inbox_count += 1
                self._last_ts[event.itag] = event.ts
                self.counters.admitted += 1
                return ADMITTED
            self.counters.note_rejected(reason)
            return reason

    def offer_batch(self, events: Sequence[Event]) -> Dict[str, int]:
        """Admit a batch; returns ``{outcome: count}`` including
        ``"admitted"`` (the ingest tier's ack payload)."""
        out: Dict[str, int] = {}
        for e in events:
            r = self.offer(e)
            out[r] = out.get(r, 0) + 1
        return out

    def admission_paused(self) -> bool:
        """Re-evaluate and return the gate state (without an offer)."""
        with self._lock:
            return self.gate.decide(
                self._inbox_count + self._pending_count, self._runtime_backlog_hw
            )

    # -- epochs ----------------------------------------------------------
    def inbox_size(self) -> int:
        with self._lock:
            return self._inbox_count

    def run_epoch(self, *, final: bool = False) -> EpochReport:
        """Seal the buffer and run it as one (recoverable, elastic)
        epoch, committing outputs up to the newest consistent snapshot.
        With ``final=True`` the service closes: the epoch runs to full
        drain, *everything* commits (closed-run semantics), and further
        offers are rejected as ``"closed"``.
        """
        with self._epoch_mutex:
            if self._finished:
                raise RuntimeFault("service already finished")
            with self._lock:
                for t, buf in self._inbox.items():
                    if buf:
                        self._pending[t].extend(buf)
                        self._seal_floor = max(self._seal_floor, buf[-1].ts)
                        self._inbox[t] = []
                self._pending_count += self._inbox_count
                self._inbox_count = 0
                sealed = self._pending_count
                report = EpochReport(
                    index=len(self.epochs),
                    final=final,
                    sealed_events=sealed,
                    first_seq=len(self.committed),
                )
                if sealed == 0 and not final:
                    report.backlog_after = 0
                    return report
                streams = self._streams_locked()
                initial = self._state
                if final:
                    self._finished = True
            t0 = time.perf_counter()
            try:
                self._drive(streams, initial, final, report)
            finally:
                report.wall_s = time.perf_counter() - t0
                with self._lock:
                    report.backlog_after = self._inbox_count + self._pending_count
                    self.counters.epochs += 1
                    self.epochs.append(report)
            return report

    def finish(self) -> EpochReport:
        """Close the service: one final epoch that commits everything."""
        return self.run_epoch(final=True)

    def _streams_locked(self) -> List[InputStream]:
        hb = self.options.heartbeat_interval
        return [
            InputStream(t, tuple(self._pending[t]), heartbeat_interval=hb)
            for t in self._itags
        ]

    def _attempt_cap(self) -> int:
        fp = self._run_options.fault_plan
        sched = self._run_options.reconfig_schedule
        budget = 2
        if fp is not None:
            budget += len([i for i in fp.crash_indices() if i not in fp.fired])
        if sched is not None:
            budget += len(
                [i for i in range(len(sched.points)) if i not in self._reconfig_fired]
            )
            if sched.autoscaler is not None:
                budget += max(
                    0, sched.autoscaler.max_reconfigs - self._autoscale_spent
                )
        return budget

    def _drive(
        self,
        streams: List[InputStream],
        initial: Any,
        final: bool,
        report: EpochReport,
    ) -> None:
        """The per-epoch attempt loop: recover crashes, apply plan
        migrations, then commit the clean attempt's snapshot prefix
        (everything, when final)."""
        opts = self._run_options
        fault_plan = opts.fault_plan
        sched = opts.reconfig_schedule
        pending: Sequence[InputStream] = streams
        last_ckpt = self._last_ckpt
        if last_ckpt is None:
            # Unlike a closed run, the service always has a sound
            # restore point: the epoch's own initial conditions (the
            # empty prefix before any commit).  A crash before the
            # first root join simply replays the epoch from scratch.
            last_ckpt = Checkpoint(
                key=(float("-inf"),), ts=float("-inf"), state=initial
            )
        attempt_metrics: List[Any] = []
        cap = self._attempt_cap()

        for attempt in range(1, cap + 1):
            view = None
            if sched is not None:
                view = sched.root_view(
                    self.plan.root.id,
                    width=plan_width(self.plan),
                    ceiling=max_width(self.program, self.plan),
                    fired=frozenset(self._reconfig_fired),
                    autoscale_spent=self._autoscale_spent,
                )
            out = self._backend.attempt(
                self.program,
                self.plan,
                pending,
                options=opts,
                initial_state=initial,
                reconfig_view=view,
            )
            report.attempts += 1
            self.counters.attempts += 1
            if out.metrics is not None:
                attempt_metrics.append(out.metrics)

            if out.crashes:
                report.crashes.extend(out.crashes)
                self.counters.crashes_recovered += len(out.crashes)
                if fault_plan is not None:
                    for crash in out.crashes:
                        fault_plan.mark_fired(crash.fault_index)
                restart = restart_from_crash(
                    attempt, out, pending, initial, last_ckpt,
                    no_checkpoint_hint=(
                        "crashed before any service checkpoint existed; "
                        "the first epoch must reach a root join before a "
                        "crash is recoverable"
                    ),
                )
                if restart.last_ckpt is not last_ckpt:
                    # The crashed attempt reached a new snapshot:
                    # its sequential output prefix commits now and the
                    # carried state advances with it.
                    self._commit(restart.committed_delta, restart.last_ckpt, report)
                pending = restart.pending
                initial = restart.initial
                last_ckpt = restart.last_ckpt
                continue

            if out.quiesce is not None:
                q = out.quiesce
                if q.point_index >= 0:
                    if q.point_index in self._reconfig_fired:
                        raise RuntimeFault(
                            f"reconfiguration point #{q.point_index} fired twice"
                        )
                    self._reconfig_fired.add(q.point_index)
                else:
                    self._autoscale_spent += 1
                delta = [v for k, v in out.keyed_outputs if k <= q.key]
                assert sched is not None
                new_plan = sched.target_plan(q, self.plan, self.program)
                assert_reconfig_compatible(self.plan, new_plan, self.program)
                self._check_plan(new_plan)
                boundary = Checkpoint(q.key, q.ts, q.state)
                self._commit(delta, boundary, report)
                report.reconfigurations.append(
                    ReconfigStep(
                        attempt=attempt,
                        reason=q.reason,
                        key=q.key,
                        ts=q.ts,
                        from_leaves=plan_width(self.plan),
                        to_leaves=plan_width(new_plan),
                        queue_depth=q.queue_depth,
                        pause_s=0.0,
                    )
                )
                self.counters.reconfigurations += 1
                with self._lock:
                    self.plan = new_plan
                self.plan_history.append(new_plan)
                pending = suffix_streams(pending, q.key)
                initial = q.state
                last_ckpt = boundary
                continue

            # Clean attempt: commit.
            if final:
                self._commit_all(out.outputs, report)
            else:
                ckpt = max(out.checkpoints, key=lambda c: c.key, default=None)
                if ckpt is not None:
                    delta = [v for k, v in out.keyed_outputs if k <= ckpt.key]
                    self._commit(delta, ckpt, report)
                # No new snapshot: nothing commits, the whole sealed
                # set stays pending and replays next epoch (progress
                # resumes once root-synchronizing traffic arrives).
            self._note_epoch_metrics(attempt_metrics, report)
            return
        raise RuntimeFault(
            f"service epoch did not converge after {cap} attempts "
            "(crash faults and reconfiguration points each fire at most "
            "once per service, so this indicates a driver bug)"
        )

    def _commit(
        self, values: List[Any], ckpt: Checkpoint, report: EpochReport
    ) -> None:
        """Append newly committed outputs and advance the carried state
        to ``ckpt``; the replay suffix strictly above the key stays
        pending."""
        with self._lock:
            self.committed.extend(values)
            self.counters.committed += len(values)
            report.committed += len(values)
            self._state = ckpt.state
            self._last_ckpt = ckpt
            count = 0
            for t in self._itags:
                kept = [e for e in self._pending[t] if e.order_key > ckpt.key]
                self._pending[t] = kept
                count += len(kept)
            self._pending_count = count

    def _commit_all(self, outputs: Sequence[Any], report: EpochReport) -> None:
        with self._lock:
            self.committed.extend(outputs)
            self.counters.committed += len(outputs)
            report.committed += len(outputs)
            for t in self._itags:
                self._pending[t] = []
            self._pending_count = 0

    def _note_epoch_metrics(
        self, attempt_metrics: List[Any], report: EpochReport
    ) -> None:
        merged = merge_attempt_metrics(attempt_metrics)
        report.metrics = merged
        if merged is None:
            return
        hw = merged.merged().max_backlog
        with self._lock:
            # The runtime-backlog signal is windowed per epoch: the
            # *latest* epoch's high-water, so a drained service recovers.
            self._runtime_backlog_hw = hw
            if self.metrics is None:
                self.metrics = RunMetrics(latency_buckets=merged.latency_buckets)
            self.metrics.accumulate(merged)
            self.metrics.attempts += report.attempts
            self.metrics.reconfigurations += len(report.reconfigurations)

    # -- egress ----------------------------------------------------------
    def committed_since(self, seq: int) -> Tuple[List[Any], int]:
        """The committed log's tail from sequence ``seq`` on, plus the
        next sequence number (the subscriber's resume cursor)."""
        with self._lock:
            tail = self.committed[seq:]
            return tail, len(self.committed)

    # -- observability ---------------------------------------------------
    def service_gauges(self) -> Dict[str, float]:
        """A consistent snapshot of the ``repro_serve_*`` gauge set."""
        with self._lock:
            return {
                "admitted_total": float(self.counters.admitted),
                "rejected_total": float(self.counters.rejected_total),
                "committed_total": float(self.counters.committed),
                "backlog": float(self._inbox_count + self._pending_count),
                "epochs_total": float(self.counters.epochs),
                "attempts_total": float(self.counters.attempts),
                "crashes_recovered_total": float(self.counters.crashes_recovered),
                "reconfigurations_total": float(self.counters.reconfigurations),
                "admission_paused": 1.0 if self.gate.paused else 0.0,
            }
