"""Crash recovery end to end (paper Appendix D.2, made executable).

The value-barrier application runs on the threaded runtime while a
fault plan kills one leaf worker mid-run.  Checkpoints are taken at
every root join — the paper's "free" consistent snapshots — and the
recovery driver restores the latest one, replays the input suffix, and
stitches the output log back together.  The end-to-end check is
DiffStream-style: the recovered run's outputs must be multiset-equal
to the sequential specification, crash or no crash.
"""

from repro.apps import value_barrier as vb
from repro.core.semantics import output_multiset
from repro.runtime import (
    CrashFault,
    FaultPlan,
    RunOptions,
    every_root_join,
    run_on_backend,
    run_sequential_reference,
)


def main() -> None:
    prog = vb.make_program()
    workload = vb.make_workload(
        n_value_streams=3, values_per_barrier=50, n_barriers=5
    )
    streams = vb.make_streams(workload)
    plan = vb.make_plan(prog, workload)
    print("plan:")
    print(plan.pretty())

    # Kill the first leaf right after the second barrier: by then the
    # root has snapshotted twice, so recovery restores barrier 2's
    # state and replays only the tail of the input.
    victim = plan.leaves()[0].id
    crash_ts = streams[-1].events[1].ts + 0.01
    faults = FaultPlan(CrashFault(victim, at_ts=crash_ts))
    print(f"\ninjecting: fail-stop of {victim} at ts>={crash_ts:.2f}")

    run = run_on_backend(
        "threaded",
        prog,
        plan,
        streams,
        options=RunOptions(
            fault_plan=faults,
            checkpoint_predicate=every_root_join(),
        ),
    )
    rec = run.recovery
    print(f"attempts:           {rec.attempts}")
    for c in rec.crashes:
        print(f"crash:              {c.worker} at event #{c.events_seen} (ts={c.ts})")
    for step in rec.recoveries:
        print(
            f"recovery:           restored checkpoint @ts={step.resumed_from_ts}, "
            f"replayed {step.replayed_events} events"
        )
    print(f"checkpoints taken:  {rec.checkpoints_taken}")

    reference = run_sequential_reference(prog, streams)
    ok = output_multiset(run.outputs) == output_multiset(reference)
    print(f"\noutputs == sequential spec (multiset): match={ok}")
    if not ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
