"""Deterministic discrete-event simulation kernel.

A minimal, fast event-heap simulator: callbacks are scheduled at
absolute times and executed in time order, with an insertion sequence
number as tie-break so runs are exactly reproducible.  Everything else
(hosts, links, actors) is layered on top in :mod:`repro.sim.network`
and :mod:`repro.sim.actors`.

Following the hpc-parallel guides, the kernel avoids per-event object
allocation where possible (plain tuples on a ``heapq``) since the heap
is the hot path of every benchmark in this repository.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

Callback = Callable[[], None]


class Simulator:
    """An event-heap simulator with deterministic tie-breaking."""

    __slots__ = ("now", "_heap", "_seq", "_running", "events_processed")

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callback]] = []
        self._seq: int = 0
        self._running: bool = False
        self.events_processed: int = 0

    def schedule_at(self, time: float, fn: Callback) -> None:
        """Schedule ``fn`` to run at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        heapq.heappush(self._heap, (time, self._seq, fn))
        self._seq += 1

    def schedule(self, delay: float, fn: Callback) -> None:
        """Schedule ``fn`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.schedule_at(self.now + delay, fn)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process scheduled events in order; return the final time.

        Stops when the heap drains, when the next event would exceed
        ``until``, or after ``max_events`` callbacks (a runaway guard
        for protocol bugs that generate unbounded message storms).
        """
        heap = self._heap
        processed = 0
        while heap:
            time, _, fn = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            self.now = time
            fn()
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        self.events_processed += processed
        if until is not None and self.now < until and not heap:
            self.now = until
        return self.now

    def step(self) -> bool:
        """Process a single event; return False if the heap is empty."""
        if not self._heap:
            return False
        time, _, fn = heapq.heappop(self._heap)
        self.now = time
        fn()
        self.events_processed += 1
        return True

    @property
    def pending(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Simulator(now={self.now:.3f}, pending={self.pending})"
