"""The dependence relation on tags (paper §2.1-§2.2).

A dependence relation is a symmetric predicate on pairs of tags.  Tags
that are *not* related are independent and may be processed in parallel
without synchronization; related tags require ordered processing.

We materialize the relation over the finite tag universe into an
adjacency map, which makes symmetry checkable, lifts cheaply to
implementation tags, and exports directly to a :mod:`networkx` graph
for the Appendix-B optimizer.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Set

import networkx as nx

from .errors import DependenceError
from .events import ImplTag, Tag
from .predicates import TagPredicate


class DependenceRelation:
    """Symmetric dependence relation over a finite tag universe."""

    def __init__(self, universe: Iterable[Tag], adjacency: Mapping[Tag, Iterable[Tag]]):
        self._universe: FrozenSet[Tag] = frozenset(universe)
        adj: Dict[Tag, Set[Tag]] = {t: set() for t in self._universe}
        for tag, deps in adjacency.items():
            if tag not in self._universe:
                raise DependenceError(f"tag {tag!r} outside universe")
            for d in deps:
                if d not in self._universe:
                    raise DependenceError(f"tag {d!r} outside universe")
                adj[tag].add(d)
        # Enforce symmetry by closure and record whether the input was
        # already symmetric (the paper requires the user relation to be).
        for tag in self._universe:
            for d in list(adj[tag]):
                adj[d].add(tag)
        self._adj: Dict[Tag, FrozenSet[Tag]] = {
            t: frozenset(deps) for t, deps in adj.items()
        }

    # -- constructors ----------------------------------------------------
    @classmethod
    def from_function(
        cls, universe: Iterable[Tag], fn: Callable[[Tag, Tag], bool]
    ) -> "DependenceRelation":
        """Materialize a symbolic ``depends(t1, t2)`` function.

        Raises :class:`DependenceError` if ``fn`` is not symmetric on
        the universe (Definition 2.1 requires symmetry).
        """
        uni = list(universe)
        adj: Dict[Tag, Set[Tag]] = {t: set() for t in uni}
        for a in uni:
            for b in uni:
                if fn(a, b) != fn(b, a):
                    raise DependenceError(
                        f"depends is not symmetric on ({a!r}, {b!r})"
                    )
                if fn(a, b):
                    adj[a].add(b)
        return cls(uni, adj)

    @classmethod
    def all_independent(cls, universe: Iterable[Tag]) -> "DependenceRelation":
        return cls(universe, {})

    @classmethod
    def all_dependent(cls, universe: Iterable[Tag]) -> "DependenceRelation":
        uni = frozenset(universe)
        return cls(uni, {t: uni for t in uni})

    # -- queries ---------------------------------------------------------
    @property
    def universe(self) -> FrozenSet[Tag]:
        return self._universe

    def depends(self, a: Tag, b: Tag) -> bool:
        if a not in self._universe or b not in self._universe:
            raise DependenceError(f"tag outside universe: {a!r} or {b!r}")
        return b in self._adj[a]

    def indep(self, a: Tag, b: Tag) -> bool:
        return not self.depends(a, b)

    def dependents_of(self, tag: Tag) -> FrozenSet[Tag]:
        if tag not in self._universe:
            raise DependenceError(f"tag outside universe: {tag!r}")
        return self._adj[tag]

    def is_self_dependent(self, tag: Tag) -> bool:
        return tag in self._adj[tag]

    def sets_independent(self, left: Iterable[Tag], right: Iterable[Tag]) -> bool:
        """True iff every tag in ``left`` is independent of every tag in
        ``right`` (used by plan validity V2)."""
        right_set = frozenset(right)
        return all(right_set.isdisjoint(self._adj[a]) for a in left)

    def preds_independent(self, p1: TagPredicate, p2: TagPredicate) -> bool:
        return self.sets_independent(p1.tags, p2.tags)

    # -- lifting to implementation tags -----------------------------------
    def itag_depends(self, a: ImplTag, b: ImplTag) -> bool:
        return self.depends(a.tag, b.tag)

    def itag_sets_independent(
        self, left: Iterable[ImplTag], right: Iterable[ImplTag]
    ) -> bool:
        return self.sets_independent({i.tag for i in left}, {i.tag for i in right})

    # -- graph view --------------------------------------------------------
    def graph(self) -> nx.Graph:
        """Tag dependence graph: nodes = tags, edges = dependence.

        Self-loops are included for self-dependent tags (networkx
        supports them); the optimizer works on this graph.
        """
        g = nx.Graph()
        g.add_nodes_from(self._universe)
        for a in self._universe:
            for b in self._adj[a]:
                g.add_edge(a, b)
        return g

    def itag_graph(self, itags: Iterable[ImplTag]) -> nx.Graph:
        """Dependence graph over a concrete set of implementation tags
        (the structure the Appendix-B optimizer decomposes)."""
        nodes = list(itags)
        g = nx.Graph()
        g.add_nodes_from(nodes)
        for i, a in enumerate(nodes):
            for b in nodes[i:]:
                if self.itag_depends(a, b) and a != b:
                    g.add_edge(a, b)
                elif a != b and a.tag == b.tag and self.is_self_dependent(a.tag):
                    g.add_edge(a, b)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        n_edges = sum(len(v) for v in self._adj.values()) // 2
        return f"DependenceRelation(|tags|={len(self._universe)}, |edges|~{n_edges})"
