"""Message types exchanged by the Flumina-style runtime (paper §3.4).

Five message kinds flow between producers and workers:

* :class:`EventMsg` — an application event, producer -> owning worker;
* :class:`HeartbeatMsg` — progress promise for one implementation tag;
  producers send them to the tag's owner, and workers *relay* them down
  the tree so descendants' mailboxes can release buffered events;
* :class:`JoinRequest` — sent by a worker processing a synchronizing
  event to its children (and relayed recursively); carries the
  triggering event's order key so child mailboxes can sequence it
  against their own events;
* :class:`JoinResponse` — a child's state traveling up;
* :class:`ForkStateMsg` — a forked state traveling back down.

All five kinds are plain picklable dataclasses over picklable fields
(events, order-key tuples, and application states), so they can cross
OS-process boundaries; :mod:`repro.runtime.wire` defines the compact
tuple encoding the process runtime actually puts on its batched
channels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from ..core.events import Event, ImplTag

OrderKey = Tuple


@dataclass(frozen=True)
class EventMsg:
    event: Event


@dataclass(frozen=True)
class HeartbeatMsg:
    """Progress for ``itag`` up to (and including) ``key``."""

    itag: ImplTag
    key: OrderKey


@dataclass(frozen=True)
class JoinRequest:
    """Join your subtree state as of ``key`` and reply to ``reply_to``."""

    req_id: Tuple[str, int]
    itag: ImplTag  # implementation tag of the triggering event
    key: OrderKey
    reply_to: str
    side: str  # "left" or "right" slot in the requester's join


@dataclass(frozen=True)
class JoinResponse:
    """A child's state traveling up.

    ``backlog`` piggybacks the subtree's queue depth — the number of
    buffered/pending mailbox items below (and at) the answering worker
    at the instant it surrendered its state.  Summed up the tree, the
    root observes the cluster-wide queue depth at every join, which is
    the load signal the elastic auto-scaler thresholds on
    (:mod:`repro.runtime.reconfigure`).

    ``metrics`` piggybacks worker metrics snapshots the same way when
    the metrics plane is enabled (:mod:`repro.runtime.metrics`): a
    tuple of per-worker wire snapshots from the answering subtree, or
    ``None`` (the default, and always when metrics are off)."""

    req_id: Tuple[str, int]
    side: str
    state: Any
    state_size: float
    backlog: int = 0
    metrics: Any = None


@dataclass(frozen=True)
class ForkStateMsg:
    req_id: Tuple[str, int]
    state: Any
    state_size: float
