"""Tests for the differential-testing utility (repro.testing) and its
use across the simulated runtime, the threaded runtime, the process
runtime, and the baseline engines — including every app under live
elastic reconfiguration."""

import random

import pytest

from repro.apps import (
    fraud,
    keycounter as kc,
    outlier,
    pageview,
    sessionize as sz,
    smarthome,
    value_barrier as vb,
)
from repro.core import Event, ImplTag
from repro.plans import plan_width, root_and_leaves_plan, sequential_plan
from repro.runtime import (
    CrashFault,
    FaultPlan,
    InputStream,
    ReconfigPoint,
    ReconfigSchedule,
    RunOptions,
    every_root_join,
    local_nodes,
    run_on_backend,
    run_sequential_reference,
)
from repro.runtime.threaded import ThreadedRuntime
from repro.testing import compare_outputs, diff_plans, diff_against_spec, fuzz_plans


def kc_streams(nkeys=2, n=80, seed=0):
    rng = random.Random(seed)
    prog = kc.make_program(nkeys)
    itags = []
    for k in range(nkeys):
        itags.append(ImplTag(kc.inc_tag(k), f"i{k}"))
        itags.append(ImplTag(kc.reset_tag(k), f"r{k}"))
    events = {it: [] for it in itags}
    for t in range(1, n):
        it = itags[rng.randrange(len(itags))]
        events[it].append(Event(it.tag, it.stream, float(t)))
    streams = [
        InputStream(it, tuple(events[it]), heartbeat_interval=5.0) for it in itags
    ]
    return prog, streams


class TestCompareOutputs:
    def test_equivalent_up_to_reordering(self):
        assert compare_outputs([1, 2, 3], [3, 1, 2]) is None

    def test_detects_missing_and_extra(self):
        m = compare_outputs([1, 2], [2, 9], "x")
        assert m is not None
        assert m.missing == {1: 1}
        assert m.extra == {9: 1}
        assert m.implementation == "x"

    def test_multiset_not_set(self):
        assert compare_outputs([1, 1], [1]) is not None

    def test_unhashable_outputs_normalized(self):
        assert compare_outputs([{"a": 1}], [{"a": 1}]) is None


class TestDiffPlans:
    def test_fuzz_plans_all_match(self):
        prog, streams = kc_streams(seed=3)
        report = fuzz_plans(prog, streams, n_plans=4, seed=1)
        assert report.ok, [str(m) for m in report.mismatches]
        assert report.implementations_checked == 4

    def test_sequential_and_tree_agree(self):
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=30, n_barriers=3)
        streams = vb.make_streams(wl)
        plans = {
            "sequential": sequential_plan(prog, [s.itag for s in streams]),
            "tree": vb.make_plan(prog, wl),
        }
        report = diff_plans(prog, streams, plans)
        assert report.ok

    def test_broken_implementation_flagged(self):
        prog, streams = kc_streams(seed=5)
        report = diff_against_spec(
            prog,
            streams,
            {"liar": lambda: [("nonsense", 0)]},
        )
        assert not report.ok
        assert report.mismatches[0].implementation == "liar"


def _app_case(name):
    """(program, streams, plan) for a small instance of each app in
    repro.apps — the fixture matrix for cross-runtime equivalence."""
    if name == "value_barrier":
        prog = vb.make_program()
        wl = vb.make_workload(n_value_streams=3, values_per_barrier=25, n_barriers=3)
        return prog, vb.make_streams(wl), vb.make_plan(prog, wl)
    if name == "fraud":
        prog = fraud.make_program()
        wl = fraud.make_workload(n_txn_streams=3, txns_per_rule=25, n_rules=3)
        return prog, fraud.make_streams(wl), fraud.make_plan(prog, wl)
    if name == "pageview":
        prog = pageview.make_program(2)
        wl = pageview.make_workload(
            n_pages=2, n_view_streams=2, views_per_update=20, n_updates_per_page=3
        )
        return prog, pageview.make_streams(wl), pageview.make_plan(prog, wl)
    if name == "keycounter":
        prog, streams = kc_streams(nkeys=2, n=60, seed=17)
        from repro.plans import random_valid_plan

        plan = random_valid_plan(prog, [s.itag for s in streams], random.Random(4))
        return prog, streams, plan
    if name == "outlier":
        prog = outlier.make_program()
        conns, queries, qit = outlier.synthetic_connections(
            n_streams=2, conns_per_query=15, n_queries=2, rate_per_ms=5.0
        )
        return (
            prog,
            outlier.make_streams(conns, queries, qit),
            outlier.make_plan(prog, conns, qit),
        )
    if name == "smarthome":
        prog = smarthome.make_program(2)
        houses, ticks, tit = smarthome.synthetic_plug_load(
            n_houses=2, measurements_per_slice=20, n_slices=2
        )
        return (
            prog,
            smarthome.make_streams(houses, ticks, tit),
            smarthome.make_plan(prog, houses, tit),
        )
    if name == "sessionize":
        wl = sz.make_workload(n_keys=3, events_per_key=20, seed=9)
        prog = sz.make_program(3, timeout_ms=wl.timeout_ms)
        return prog, sz.make_streams(wl), sz.make_plan(prog, wl)
    raise AssertionError(name)


ALL_APPS = (
    "value_barrier",
    "fraud",
    "pageview",
    "keycounter",
    "outlier",
    "smarthome",
    "sessionize",
)


class TestCrossRuntimeDifferential:
    def test_simulated_threaded_and_spec_agree(self):
        prog, streams = kc_streams(nkeys=2, seed=11)
        from repro.plans import random_valid_plan

        plan = random_valid_plan(
            prog, [s.itag for s in streams], random.Random(2)
        )
        report = diff_against_spec(
            prog,
            streams,
            {
                "threaded": lambda: ThreadedRuntime(prog, plan).run(streams).outputs,
            },
        )
        assert report.ok, [str(m) for m in report.mismatches]

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_all_apps_all_runtimes_agree(self, app):
        """Sequential spec, threaded, and process runtimes — the
        latter over both the pipe and the TCP data planes — produce
        identical output multisets on every application in repro.apps
        (Theorem 2.4's determinism up to reordering, checked on every
        real substrate and transport)."""
        prog, streams, plan = _app_case(app)
        impls = {
            backend: (
                lambda b=backend: run_on_backend(b, prog, plan, streams).outputs
            )
            for backend in ("threaded", "process")
        }
        impls["process-tcp"] = lambda: run_on_backend(
            "process", prog, plan, streams, options=RunOptions(transport="tcp")
        ).outputs
        report = diff_against_spec(prog, streams, impls)
        assert report.ok, [str(m) for m in report.mismatches]


def _elastic_app_case(name):
    """(program, streams, plan) for each app with a plan whose root
    tags synchronize globally — the shape elastic reconfiguration (like
    checkpoint recovery) requires.  Most apps' natural plans qualify;
    pageview needs a single page (pages are mutually independent, so a
    multi-page forest has no global synchronization point) and
    keycounter a single key with resets at the root."""
    if name == "pageview":
        prog = pageview.make_program(1)
        wl = pageview.make_workload(
            n_pages=1, n_view_streams=3, views_per_update=15, n_updates_per_page=3
        )
        return prog, pageview.make_streams(wl), pageview.make_plan(prog, wl)
    if name == "keycounter":
        prog = kc.make_program(1)
        rng = random.Random(23)
        inc_itags = [ImplTag(kc.inc_tag(0), f"i{s}") for s in range(3)]
        reset_itag = ImplTag(kc.reset_tag(0), "r")
        streams = [
            InputStream(
                it,
                tuple(
                    Event(it.tag, it.stream, float(t))
                    for t in sorted(rng.sample(range(1, 60), 12))
                ),
                heartbeat_interval=5.0,
            )
            for it in inc_itags
        ]
        streams.append(
            InputStream(
                reset_itag,
                tuple(Event(reset_itag.tag, "r", float(t)) for t in (14.5, 31.5, 47.5)),
                heartbeat_interval=5.0,
            )
        )
        plan = root_and_leaves_plan(prog, [reset_itag], [[it] for it in inc_itags])
        return prog, streams, plan
    return _app_case(name)


class TestElasticDifferential:
    """Every app, mid-stream reconfiguration, both real runtimes: the
    plan narrows at the first root join and (where the narrow plan can
    still quiesce) widens back at the next — outputs stay multiset-
    equal to the sequential specification across both migrations."""

    @pytest.mark.parametrize("backend", ("threaded", "process"))
    @pytest.mark.parametrize("app", ALL_APPS)
    def test_all_apps_reconfigure_mid_stream(self, app, backend):
        prog, streams, plan = _elastic_app_case(app)
        w = plan_width(plan)
        assert w >= 2, f"{app}: elastic case must start parallel"
        mid = max(1, w // 2)
        points = [ReconfigPoint(after_joins=1, to_leaves=mid)]
        if mid >= 2:
            points.append(ReconfigPoint(after_joins=1, to_leaves=w))
        report = diff_against_spec(
            prog,
            streams,
            {
                backend: lambda: run_on_backend(
                    backend,
                    prog,
                    plan,
                    streams,
                    options=RunOptions(
                        reconfig_schedule=ReconfigSchedule(*points),
                        timeout_s=60.0,
                    ),
                ).outputs
            },
        )
        assert report.ok, [str(m) for m in report.mismatches]

    @pytest.mark.parametrize("app", ALL_APPS)
    def test_elastic_migrations_actually_happen(self, app):
        """The schedules above are not vacuous: at least the first
        migration fires on every app (checked once, on threaded)."""
        prog, streams, plan = _elastic_app_case(app)
        w = plan_width(plan)
        mid = max(1, w // 2)
        run = run_on_backend(
            "threaded",
            prog,
            plan,
            streams,
            options=RunOptions(
                reconfig_schedule=ReconfigSchedule(
                    ReconfigPoint(after_joins=1, to_leaves=mid)
                ),
                timeout_s=60.0,
            ),
        )
        rec = run.reconfig
        assert rec.reconfigured, f"{app}: reconfiguration point never fired"
        assert rec.reconfigurations[0].from_leaves == w
        assert plan_width(rec.final_plan) == mid
        # The migrated plan is a repartition of the original.
        assert rec.final_plan.all_itags() == plan.all_itags()


class TestSessionizeFullMatrix:
    """The seventh app family on every verification surface: spec vs
    sim, threaded, process, and a two-node TCP cluster — then under an
    injected crash *and* a mid-stream re-shard at once (the hardest
    combination: the recovery must restore sessions into the
    then-current plan shape)."""

    def _case(self, *, skew_alpha=None, seed=31):
        wl = sz.make_workload(
            n_keys=4, events_per_key=24, seed=seed, skew_alpha=skew_alpha
        )
        prog = sz.make_program(4, timeout_ms=wl.timeout_ms)
        return prog, sz.make_streams(wl), sz.make_plan(prog, wl), wl

    def test_sim_and_tcp_cluster_agree_with_spec(self):
        prog, streams, plan, _ = self._case()
        impls = {
            "sim": lambda: run_on_backend("sim", prog, plan, streams).outputs,
            "tcp-2nodes": lambda: run_on_backend(
                "process",
                prog,
                plan,
                streams,
                options=RunOptions(
                    transport="tcp", nodes=local_nodes(2), timeout_s=120.0
                ),
            ).outputs,
        }
        report = diff_against_spec(prog, streams, impls)
        assert report.ok, [str(m) for m in report.mismatches]

    def test_skewed_traffic_stays_spec_identical(self):
        prog, streams, plan, wl = self._case(skew_alpha=1.3)
        # The skew is real: the head key carries strictly more traffic.
        counts = [len(v) for v in wl.act_streams.values()]
        assert counts[0] > counts[-1]
        report = diff_against_spec(
            prog,
            streams,
            {"threaded": lambda: run_on_backend("threaded", prog, plan, streams).outputs},
        )
        assert report.ok, [str(m) for m in report.mismatches]

    @pytest.mark.parametrize("backend", ("threaded", "process"))
    def test_crash_plus_reshard_mid_stream(self, backend):
        prog, streams, plan, wl = self._case()
        flush_ts = [e.ts for e in wl.flush_stream]
        victim = next(
            plan.owner_of(s.itag).id
            for s in streams
            if plan.owner_of(s.itag).id != plan.root.id
        )
        run = run_on_backend(
            backend,
            prog,
            plan,
            streams,
            options=RunOptions(
                fault_plan=FaultPlan(
                    CrashFault(victim, at_ts=flush_ts[1] + 0.01)
                ),
                reconfig_schedule=ReconfigSchedule(
                    ReconfigPoint(after_joins=1, to_leaves=2)
                ),
                checkpoint_predicate=every_root_join(),
                timeout_s=120.0,
            ),
        )
        rec = run.reconfig if run.reconfig is not None else run.recovery
        assert rec.attempts >= 2, "neither the crash nor the migration fired"
        ref = run_sequential_reference(prog, streams)
        mismatch = compare_outputs(ref, run.outputs, backend)
        assert mismatch is None, str(mismatch)
