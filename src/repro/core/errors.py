"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so callers can
catch a single base class.  Specific subclasses communicate which layer
rejected the input: the programming model (:class:`ProgramError`), the
plan generator/validator (:class:`PlanError`), or the runtime
(:class:`RuntimeFault`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ProgramError(ReproError):
    """A DGS program definition is malformed or inconsistent."""


class PredicateError(ProgramError):
    """A tag predicate was used with tags outside its universe."""


class DependenceError(ProgramError):
    """The dependence relation is malformed (e.g. not symmetric)."""


class ConsistencyError(ProgramError):
    """A program violates one of the consistency conditions C1-C3."""


class PlanError(ReproError):
    """A synchronization plan is structurally invalid."""


class ValidityError(PlanError):
    """A synchronization plan is not P-valid (violates V1 or V2)."""


class RuntimeFault(ReproError):
    """The runtime reached an impossible or unsupported configuration."""


class NoCheckpointError(RuntimeFault):
    """A worker crashed but no checkpoint exists to recover from.

    Raised by the recovery driver instead of hanging or silently
    restarting: either no ``checkpoint_predicate`` was configured, or
    the crash fired before the first root join snapshotted anything.
    """


class RecoveryUnsoundError(RuntimeFault):
    """Checkpoint-based recovery was requested for a plan whose root
    snapshots are not timestamp-prefix states (a root tag does not
    depend on every tag in the universe), so restore-and-replay could
    double- or under-apply independent events."""


class InputError(ReproError):
    """An input stream violates the valid-input-instance assumptions."""
